// Package load is the workload-spec load harness behind cmd/traceload:
// it parses a multi-client YAML workload spec, expands it into a
// seeded, fully deterministic open-loop request schedule, fires that
// schedule at a traced or tracerouter endpoint, and aggregates the
// outcomes into a per-SLO-class latency report (p50/p95/p99, achieved
// throughput, SLO attainment, 429/503/504/502 rates).
//
// The spec format follows the BLIS workload-spec shape: an aggregate
// arrival rate split across client blocks, where each client declares
// a rate fraction, an arrival process (poisson, gamma, weibull), a
// request-size distribution over flow counts, a traffic class, a wire
// format, and an SLO class with a latency target.
//
// Determinism contract: the schedule — request offsets, flow counts,
// per-request seeds, and the merged firing order — is a pure function
// of the spec. Each client draws from its own stats.RNG.Split stream,
// derived in declaration order from the spec seed, and schedule
// construction is entirely sequential, so two runs of the same spec
// produce identical schedules at any GOMAXPROCS. What the *server*
// answers (latency, shedding) is of course not deterministic; the
// schedule the harness offers it is.
package load

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"trafficdiff/internal/stats"
)

// Spec is a parsed workload specification.
type Spec struct {
	// Version is the spec-format version ("1").
	Version string
	// Seed roots every client's RNG stream (default 1).
	Seed uint64
	// AggregateRate is the total offered arrival rate in requests/s,
	// split across clients by their rate fractions.
	AggregateRate float64
	// DurationS bounds the schedule in seconds; 0 means unbounded (a
	// request budget must bound it instead).
	DurationS float64
	// NumRequests bounds the schedule by total request count,
	// apportioned across clients by rate fraction; 0 means unbounded
	// (a duration must bound it instead). When both are set, each
	// client stops at whichever limit it reaches first.
	NumRequests int
	// Clients are the traffic sources, in declaration order (the order
	// RNG streams are split in — reordering clients reorders streams).
	Clients []ClientSpec
}

// ClientSpec is one traffic source in a workload spec.
type ClientSpec struct {
	// ID names the client in reports and errors.
	ID string
	// RateFraction is this client's share of the aggregate rate; the
	// fractions must sum to 1.
	RateFraction float64
	// Class is the traffic class requested from the server.
	Class string
	// Format is the response encoding: "pcap" (default) or "csv".
	Format string
	// SLOClass buckets this client's results in the report; several
	// clients may share one SLO class.
	SLOClass string
	// SLOTargetMs is the latency target the class is measured against.
	SLOTargetMs float64
	// TimeoutMs, when positive, is sent as the request's timeout_ms so
	// the server expires it (504) instead of letting it run long.
	TimeoutMs int
	// Arrival selects the inter-arrival process.
	Arrival ArrivalSpec
	// Size is the flow-count distribution for request bodies.
	Size SizeSpec
}

// ArrivalSpec selects a client's inter-arrival process.
type ArrivalSpec struct {
	// Process is "poisson", "gamma" or "weibull".
	Process string
	// CV is the gamma coefficient of variation (default 1; >1 bursty,
	// <1 regular). Only meaningful for process gamma.
	CV float64
	// Shape is the weibull shape k (default 1; <1 bursty, >1 regular).
	// Only meaningful for process weibull.
	Shape float64
}

// SizeSpec is a request-size (flow count) distribution.
type SizeSpec struct {
	// Type is one of constant, uniform, normal, lognormal, exponential,
	// pareto, or mixture.
	Type string
	// Params are the distribution parameters, keyed per type:
	// constant: value; uniform: lo, hi; normal: mean, std_dev;
	// lognormal: mu, sigma; exponential: mean; pareto: xm, alpha.
	Params map[string]float64
	// Min and Max clamp sampled flow counts (defaults 1 and 64, the
	// server's default per-request ceiling).
	Min, Max float64
	// Components and Weight describe mixtures: each component carries
	// its own Type/Params plus a positive Weight.
	Components []SizeSpec
	// Weight is this component's share within a parent mixture.
	Weight float64
}

// interArrival builds the client's inter-arrival gap distribution for
// a per-client rate (requests/s), with mean gap 1/rate for every
// process so the rate fraction is honored regardless of burst shape.
func (c *ClientSpec) interArrival(rate float64) (stats.Dist, error) {
	mean := 1 / rate
	switch c.Arrival.Process {
	case "", "poisson":
		return stats.Exponential{Lambda: rate}, nil
	case "gamma":
		cv := c.Arrival.CV
		if cv <= 0 {
			cv = 1
		}
		// CV of a gamma is 1/sqrt(shape): shape = 1/cv², scale chosen
		// so shape*scale = mean.
		shape := 1 / (cv * cv)
		return stats.Gamma{Shape: shape, Scale: mean / shape}, nil
	case "weibull":
		shape := c.Arrival.Shape
		if shape <= 0 {
			shape = 1
		}
		// Mean of a weibull is scale*Γ(1+1/shape).
		return stats.Weibull{Shape: shape, Scale: mean / math.Gamma(1+1/shape)}, nil
	default:
		return nil, fmt.Errorf("client %q: unknown arrival process %q (want poisson, gamma or weibull)", c.ID, c.Arrival.Process)
	}
}

// Dist builds the stats distribution behind a size spec (without the
// clamp — BuildSchedule applies Min/Max at sampling time).
func (s *SizeSpec) Dist() (stats.Dist, error) {
	p := func(key string) (float64, bool) {
		v, ok := s.Params[key]
		return v, ok
	}
	need := func(key string) (float64, error) {
		v, ok := p(key)
		if !ok {
			return 0, fmt.Errorf("size distribution %q: missing param %q", s.Type, key)
		}
		return v, nil
	}
	switch s.Type {
	case "constant":
		v, err := need("value")
		if err != nil {
			return nil, err
		}
		return stats.Uniform{Lo: v, Hi: v}, nil
	case "uniform":
		lo, err := need("lo")
		if err != nil {
			return nil, err
		}
		hi, err := need("hi")
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("size distribution uniform: hi %v < lo %v", hi, lo)
		}
		return stats.Uniform{Lo: lo, Hi: hi}, nil
	case "normal":
		mean, err := need("mean")
		if err != nil {
			return nil, err
		}
		sd, err := need("std_dev")
		if err != nil {
			return nil, err
		}
		return stats.Normal{Mu: mean, Sigma: sd}, nil
	case "lognormal":
		mu, err := need("mu")
		if err != nil {
			return nil, err
		}
		sigma, err := need("sigma")
		if err != nil {
			return nil, err
		}
		return stats.LogNormal{Mu: mu, Sigma: sigma}, nil
	case "exponential":
		mean, err := need("mean")
		if err != nil {
			return nil, err
		}
		if mean <= 0 {
			return nil, fmt.Errorf("size distribution exponential: mean must be positive, got %v", mean)
		}
		return stats.Exponential{Lambda: 1 / mean}, nil
	case "pareto":
		xm, err := need("xm")
		if err != nil {
			return nil, err
		}
		alpha, err := need("alpha")
		if err != nil {
			return nil, err
		}
		if xm <= 0 || alpha <= 0 {
			return nil, fmt.Errorf("size distribution pareto: xm and alpha must be positive")
		}
		return stats.Pareto{Xm: xm, Alpha: alpha}, nil
	case "mixture":
		if len(s.Components) == 0 {
			return nil, fmt.Errorf("size distribution mixture: no components")
		}
		dists := make([]stats.Dist, len(s.Components))
		weights := make([]float64, len(s.Components))
		for i := range s.Components {
			comp := &s.Components[i]
			if comp.Type == "mixture" {
				return nil, fmt.Errorf("size distribution mixture: nested mixtures are not supported")
			}
			d, err := comp.Dist()
			if err != nil {
				return nil, fmt.Errorf("component %d: %w", i, err)
			}
			if comp.Weight < 0 {
				return nil, fmt.Errorf("component %d: negative weight %v", i, comp.Weight)
			}
			dists[i] = d
			weights[i] = comp.Weight
		}
		return stats.NewMixture(dists, weights), nil
	default:
		return nil, fmt.Errorf("unknown size distribution type %q", s.Type)
	}
}

// ParseSpec parses and validates a workload spec document.
func ParseSpec(data []byte) (*Spec, error) {
	node, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	root, ok := node.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("spec: top level must be a mapping")
	}
	d := &specDecoder{}
	spec := &Spec{
		Version:       d.str(root, "version", "1"),
		Seed:          d.uint64(root, "seed", 1),
		AggregateRate: d.float(root, "aggregate_rate", 0),
		DurationS:     d.float(root, "duration_s", 0),
		NumRequests:   int(d.float(root, "num_requests", 0)),
	}
	clientsNode, ok := root["clients"]
	if !ok {
		return nil, fmt.Errorf("spec: missing clients list")
	}
	clientList, ok := clientsNode.([]any)
	if !ok {
		return nil, fmt.Errorf("spec: clients must be a list")
	}
	for i, cn := range clientList {
		cm, ok := cn.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("spec: clients[%d] must be a mapping", i)
		}
		c := ClientSpec{
			ID:           d.str(cm, "id", fmt.Sprintf("client%d", i)),
			RateFraction: d.float(cm, "rate_fraction", 0),
			Class:        d.str(cm, "class", ""),
			Format:       d.str(cm, "format", "pcap"),
			SLOClass:     d.str(cm, "slo_class", ""),
			SLOTargetMs:  d.float(cm, "slo_target_ms", 0),
			TimeoutMs:    int(d.float(cm, "timeout_ms", 0)),
		}
		if an, ok := cm["arrival"]; ok {
			am, ok := an.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("spec: clients[%d].arrival must be a mapping", i)
			}
			c.Arrival = ArrivalSpec{
				Process: d.str(am, "process", "poisson"),
				CV:      d.float(am, "cv", 0),
				Shape:   d.float(am, "shape", 0),
			}
		} else {
			c.Arrival = ArrivalSpec{Process: "poisson"}
		}
		sn, ok := cm["size_distribution"]
		if !ok {
			// Default: every request asks for one flow.
			c.Size = SizeSpec{Type: "constant", Params: map[string]float64{"value": 1}}
		} else {
			size, err := d.sizeSpec(sn, fmt.Sprintf("clients[%d].size_distribution", i))
			if err != nil {
				return nil, err
			}
			c.Size = *size
		}
		spec.Clients = append(spec.Clients, c)
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Validate checks the spec's cross-field invariants.
func (s *Spec) Validate() error {
	if s.Version != "1" {
		return fmt.Errorf("spec: unsupported version %q (want \"1\")", s.Version)
	}
	if s.AggregateRate <= 0 || math.IsInf(s.AggregateRate, 0) || math.IsNaN(s.AggregateRate) {
		return fmt.Errorf("spec: aggregate_rate must be a positive rate in requests/s, got %v", s.AggregateRate)
	}
	if s.DurationS < 0 || s.NumRequests < 0 {
		return fmt.Errorf("spec: duration_s and num_requests must be non-negative")
	}
	if s.DurationS <= 0 && s.NumRequests <= 0 {
		return fmt.Errorf("spec: set duration_s and/or num_requests to bound the run")
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("spec: at least one client is required")
	}
	total := 0.0
	ids := map[string]bool{}
	for i := range s.Clients {
		c := &s.Clients[i]
		if ids[c.ID] {
			return fmt.Errorf("spec: duplicate client id %q", c.ID)
		}
		ids[c.ID] = true
		if c.RateFraction <= 0 {
			return fmt.Errorf("client %q: rate_fraction must be positive, got %v", c.ID, c.RateFraction)
		}
		total += c.RateFraction
		if c.Class == "" {
			return fmt.Errorf("client %q: class is required", c.ID)
		}
		if c.Format != "pcap" && c.Format != "csv" {
			return fmt.Errorf("client %q: format must be \"pcap\" or \"csv\", got %q", c.ID, c.Format)
		}
		if c.SLOClass == "" {
			return fmt.Errorf("client %q: slo_class is required", c.ID)
		}
		if c.SLOTargetMs <= 0 {
			return fmt.Errorf("client %q: slo_target_ms must be positive, got %v", c.ID, c.SLOTargetMs)
		}
		if _, err := c.interArrival(1); err != nil {
			return err
		}
		if _, err := c.Size.Dist(); err != nil {
			return fmt.Errorf("client %q: %w", c.ID, err)
		}
		min, max := c.Size.clampBounds()
		if min > max {
			return fmt.Errorf("client %q: size min %v > max %v", c.ID, min, max)
		}
	}
	if !stats.ApproxEqual(total, 1, 1e-6) {
		return fmt.Errorf("spec: client rate_fractions sum to %v, want 1", total)
	}
	// SLO classes must agree on their target across clients, or the
	// per-class attainment number would be ambiguous.
	targets := map[string]float64{}
	for i := range s.Clients {
		c := &s.Clients[i]
		if prev, ok := targets[c.SLOClass]; ok && !stats.ApproxEqual(prev, c.SLOTargetMs, 1e-9) {
			return fmt.Errorf("slo class %q: conflicting targets %vms and %vms", c.SLOClass, prev, c.SLOTargetMs)
		}
		targets[c.SLOClass] = c.SLOTargetMs
	}
	return nil
}

// clampBounds returns the effective [min, max] flow-count clamp.
func (s *SizeSpec) clampBounds() (float64, float64) {
	min, max := s.Min, s.Max
	if min <= 0 {
		min = 1
	}
	if max <= 0 {
		max = 64
	}
	return min, max
}

// SLOClasses returns the distinct SLO class names in sorted order.
func (s *Spec) SLOClasses() []string {
	seen := map[string]bool{}
	var out []string
	for i := range s.Clients {
		if c := s.Clients[i].SLOClass; !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// specDecoder accumulates the first typed-access error while walking
// the generic YAML tree, so call sites stay linear.
type specDecoder struct {
	err error
}

func (d *specDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *specDecoder) str(m map[string]any, key, def string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.fail("spec: %s must be a scalar, got %T", key, v)
		return def
	}
	return s
}

func (d *specDecoder) float(m map[string]any, key string, def float64) float64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.fail("spec: %s must be a number, got %T", key, v)
		return def
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail("spec: %s: %q is not a number", key, s)
		return def
	}
	return f
}

func (d *specDecoder) uint64(m map[string]any, key string, def uint64) uint64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.fail("spec: %s must be an unsigned integer, got %T", key, v)
		return def
	}
	u, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		d.fail("spec: %s: %q is not an unsigned integer", key, s)
		return def
	}
	return u
}

// sizeSpec decodes a size_distribution node (recursing into mixture
// components).
func (d *specDecoder) sizeSpec(node any, path string) (*SizeSpec, error) {
	m, ok := node.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("spec: %s must be a mapping", path)
	}
	s := &SizeSpec{
		Type:   d.str(m, "type", ""),
		Min:    d.float(m, "min", 0),
		Max:    d.float(m, "max", 0),
		Weight: d.float(m, "weight", 0),
	}
	if pn, ok := m["params"]; ok && pn != nil {
		pm, ok := pn.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("spec: %s.params must be a mapping", path)
		}
		s.Params = map[string]float64{}
		// Sorted key walk keeps error messages deterministic.
		keys := make([]string, 0, len(pm))
		for k := range pm {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s.Params[k] = d.float(pm, k, 0)
		}
	}
	if cn, ok := m["components"]; ok && cn != nil {
		cl, ok := cn.([]any)
		if !ok {
			return nil, fmt.Errorf("spec: %s.components must be a list", path)
		}
		for i, comp := range cl {
			cs, err := d.sizeSpec(comp, fmt.Sprintf("%s.components[%d]", path, i))
			if err != nil {
				return nil, err
			}
			s.Components = append(s.Components, *cs)
		}
	}
	return s, nil
}
