package hmm

import (
	"time"

	"trafficdiff/internal/flow"
)

// FromFlow converts a flow into the HMM's observation sequence: packet
// sizes and inter-arrival gaps, the only two features this class of
// generator models (the paper's granularity criticism).
func FromFlow(f *flow.Flow) []Observation {
	out := make([]Observation, 0, len(f.Packets))
	var prev time.Time
	for i, p := range f.Packets {
		gap := 0.0
		if i > 0 {
			gap = p.Timestamp.Sub(prev).Seconds() * 1000
			if gap < 0 {
				gap = 0
			}
		}
		prev = p.Timestamp
		out = append(out, Observation{SizeBytes: float64(p.Length()), GapMs: gap})
	}
	return out
}
