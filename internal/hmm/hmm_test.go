package hmm

import (
	"math"
	"testing"
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/workload"
)

// twoModeSeqs builds sequences alternating between two clearly
// separated (size, gap) regimes — a 2-state HMM's home turf.
func twoModeSeqs(n, length int, seed uint64) [][]Observation {
	r := stats.NewRNG(seed)
	seqs := make([][]Observation, n)
	for s := range seqs {
		seq := make([]Observation, length)
		state := 0
		for t := range seq {
			if r.Float64() < 0.1 {
				state = 1 - state
			}
			if state == 0 {
				seq[t] = Observation{SizeBytes: 1400 + 20*r.NormFloat64(), GapMs: 2 + 0.2*r.NormFloat64()}
			} else {
				seq[t] = Observation{SizeBytes: 80 + 10*r.NormFloat64(), GapMs: 30 + 2*r.NormFloat64()}
			}
		}
		seqs[s] = seq
	}
	return seqs
}

func TestTrainImprovesLikelihood(t *testing.T) {
	seqs := twoModeSeqs(10, 60, 1)
	cfg := Config{States: 2, Iterations: 15, Seed: 2}
	_, curve, err := Train(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 15 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[len(curve)-1] <= curve[0] {
		t.Fatalf("log-likelihood did not improve: %v -> %v", curve[0], curve[len(curve)-1])
	}
	// EM is monotone (up to numerical noise).
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-6 {
			t.Fatalf("EM decreased likelihood at iter %d: %v -> %v", i, curve[i-1], curve[i])
		}
	}
}

func TestLearnedStatesSeparateModes(t *testing.T) {
	seqs := twoModeSeqs(12, 80, 3)
	m, _, err := Train(seqs, Config{States: 2, Iterations: 25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One state should sit near 1400-byte packets, the other near 80.
	hi, lo := math.Max(m.Mean[0][0], m.Mean[0][1]), math.Min(m.Mean[0][0], m.Mean[0][1])
	if hi < 1000 || lo > 400 {
		t.Fatalf("state means %v did not separate the modes", m.Mean[0])
	}
}

func TestSampleMatchesTrainingDistribution(t *testing.T) {
	seqs := twoModeSeqs(12, 80, 5)
	m, _, err := Train(seqs, Config{States: 2, Iterations: 25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(7)
	sample := m.Sample(2000, r)
	var mean float64
	for _, o := range sample {
		mean += o.SizeBytes
	}
	mean /= float64(len(sample))
	// True blend mean is roughly halfway between modes, weighted by
	// occupancy (~50/50 switching): between 400 and 1100.
	if mean < 300 || mean > 1250 {
		t.Fatalf("sample size mean %v far from training blend", mean)
	}
	for _, o := range sample {
		if o.SizeBytes < 0 || o.GapMs < 0 {
			t.Fatal("negative observation sampled")
		}
	}
}

func TestLogLikelihoodRanksModels(t *testing.T) {
	seqs := twoModeSeqs(10, 60, 8)
	good, _, err := Train(seqs, Config{States: 2, Iterations: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// An untrained model with far-off means scores worse.
	bad := New(2, seqs, stats.NewRNG(10))
	for i := range bad.Mean[0] {
		bad.Mean[0][i] = 1e6
	}
	test := twoModeSeqs(1, 60, 11)[0]
	if good.LogLikelihood(test) <= bad.LogLikelihood(test) {
		t.Fatal("trained model does not outscore mismatched model")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train(nil, DefaultConfig()); err == nil {
		t.Error("empty training set should fail")
	}
	if _, _, err := Train([][]Observation{{}}, DefaultConfig()); err == nil {
		t.Error("all-empty sequences should fail")
	}
	seqs := twoModeSeqs(2, 10, 1)
	if _, _, err := Train(seqs, Config{States: 0, Iterations: 5}); err == nil {
		t.Error("zero states should fail")
	}
	if _, _, err := Train(seqs, Config{States: 2, Iterations: 0}); err == nil {
		t.Error("zero iterations should fail")
	}
}

// FromFlow extracts HMM observations from a real flow — exercised here
// against the workload generator to prove the integration works.
func TestObservationsFromWorkloadFlow(t *testing.T) {
	g := workload.NewGenerator(1)
	g.MaxPackets = 40
	p, _ := workload.ProfileByName("netflix")
	f := g.GenerateFlow(p)
	obs := FromFlow(f)
	if len(obs) != len(f.Packets) {
		t.Fatalf("observations %d, packets %d", len(obs), len(f.Packets))
	}
	if obs[0].GapMs != 0 {
		t.Errorf("first gap = %v, want 0", obs[0].GapMs)
	}
	for i, o := range obs {
		if o.SizeBytes <= 0 {
			t.Fatalf("observation %d size %v", i, o.SizeBytes)
		}
		if o.GapMs < 0 {
			t.Fatalf("observation %d negative gap", i)
		}
	}
	// Train a small model end to end on real flows.
	var seqs [][]Observation
	for i := 0; i < 6; i++ {
		seqs = append(seqs, FromFlow(g.GenerateFlow(p)))
	}
	if _, _, err := Train(seqs, Config{States: 3, Iterations: 8, Seed: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestFromFlowEmpty(t *testing.T) {
	if obs := FromFlow(&flow.Flow{}); len(obs) != 0 {
		t.Fatal("empty flow should yield no observations")
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	seqs := twoModeSeqs(5, 30, 12)
	m, _, _ := Train(seqs, Config{States: 2, Iterations: 10, Seed: 13})
	a := m.Sample(50, stats.NewRNG(99))
	b := m.Sample(50, stats.NewRNG(99))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed samples differ")
		}
	}
}

var _ = time.Millisecond // keep time imported for FromFlow tests
