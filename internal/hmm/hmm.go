// Package hmm implements the Hidden-Markov-Model traffic generator the
// paper cites as prior ML work (Redžović et al., "IP Traffic Generator
// Based on Hidden Markov Models"): an HMM over per-packet
// (size, inter-arrival) observations, trained with Baum-Welch and
// sampled to produce new sequences. It reproduces that approach's
// limitation the paper calls out — coverage of only a couple of packet
// features, with no header fields at all.
package hmm

import (
	"fmt"
	"math"

	"trafficdiff/internal/stats"
)

// Observation is one packet's feature pair.
type Observation struct {
	// SizeBytes is the packet length.
	SizeBytes float64
	// GapMs is the inter-arrival gap to the previous packet in
	// milliseconds.
	GapMs float64
}

// Model is a Gaussian-emission HMM over Observation sequences.
type Model struct {
	N int // states

	// Init, Trans are initial and transition probabilities.
	Init  []float64
	Trans [][]float64
	// Emission Gaussians per state and feature (0=size, 1=gap), with
	// diagonal covariance.
	Mean [2][]float64
	Var  [2][]float64
}

// Config controls training.
type Config struct {
	States     int
	Iterations int
	Seed       uint64
}

// DefaultConfig returns the settings the benches use.
func DefaultConfig() Config { return Config{States: 4, Iterations: 20, Seed: 1} }

// New initializes a model with k states and randomized parameters
// informed by the data's range.
func New(k int, seqs [][]Observation, r *stats.RNG) *Model {
	m := &Model{N: k}
	m.Init = make([]float64, k)
	m.Trans = make([][]float64, k)
	var sizeMean, gapMean, n float64
	for _, seq := range seqs {
		for _, o := range seq {
			sizeMean += o.SizeBytes
			gapMean += o.GapMs
			n++
		}
	}
	if n > 0 {
		sizeMean /= n
		gapMean /= n
	}
	for i := 0; i < k; i++ {
		m.Init[i] = 1 / float64(k)
		m.Trans[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			m.Trans[i][j] = 1 / float64(k)
		}
	}
	for f := 0; f < 2; f++ {
		m.Mean[f] = make([]float64, k)
		m.Var[f] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		// Spread initial means around the data means so states can
		// specialize.
		m.Mean[0][i] = sizeMean * (0.4 + 1.2*r.Float64())
		m.Mean[1][i] = gapMean * (0.4 + 1.2*r.Float64())
		m.Var[0][i] = math.Max(sizeMean*sizeMean/4, 1)
		m.Var[1][i] = math.Max(gapMean*gapMean/4, 0.01)
	}
	return m
}

// logGauss returns the log density of x under N(mean, variance).
func logGauss(x, mean, variance float64) float64 {
	d := x - mean
	return -0.5*(math.Log(2*math.Pi*variance)) - d*d/(2*variance)
}

// logEmit returns the state-wise log emission density of o.
func (m *Model) logEmit(o Observation) []float64 {
	out := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		out[i] = logGauss(o.SizeBytes, m.Mean[0][i], m.Var[0][i]) +
			logGauss(o.GapMs, m.Mean[1][i], m.Var[1][i])
	}
	return out
}

// logSumExp computes log(sum(exp(xs))) stably.
func logSumExp(xs []float64) float64 {
	mx := math.Inf(-1)
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - mx)
	}
	return mx + math.Log(s)
}

// Train fits the model to the sequences with Baum-Welch (EM) and
// returns the per-iteration mean log-likelihood curve.
func Train(seqs [][]Observation, cfg Config) (*Model, []float64, error) {
	if len(seqs) == 0 {
		return nil, nil, fmt.Errorf("hmm: no training sequences")
	}
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	if total == 0 {
		return nil, nil, fmt.Errorf("hmm: all sequences empty")
	}
	if cfg.States < 1 || cfg.Iterations < 1 {
		return nil, nil, fmt.Errorf("hmm: invalid config %+v", cfg)
	}
	r := stats.NewRNG(cfg.Seed)
	m := New(cfg.States, seqs, r)
	var curve []float64

	for iter := 0; iter < cfg.Iterations; iter++ {
		k := m.N
		// Accumulators.
		initAcc := make([]float64, k)
		transAcc := make([][]float64, k)
		for i := range transAcc {
			transAcc[i] = make([]float64, k)
		}
		var meanAcc, varAcc [2][]float64
		gammaAcc := make([]float64, k)
		for f := 0; f < 2; f++ {
			meanAcc[f] = make([]float64, k)
			varAcc[f] = make([]float64, k)
		}
		ll := 0.0
		obsCount := 0

		for _, seq := range seqs {
			T := len(seq)
			if T == 0 {
				continue
			}
			obsCount += T
			emit := make([][]float64, T)
			for t := range seq {
				emit[t] = m.logEmit(seq[t])
			}
			// Forward (log domain).
			alpha := make([][]float64, T)
			alpha[0] = make([]float64, k)
			for i := 0; i < k; i++ {
				alpha[0][i] = math.Log(m.Init[i]+1e-300) + emit[0][i]
			}
			for t := 1; t < T; t++ {
				alpha[t] = make([]float64, k)
				for j := 0; j < k; j++ {
					terms := make([]float64, k)
					for i := 0; i < k; i++ {
						terms[i] = alpha[t-1][i] + math.Log(m.Trans[i][j]+1e-300)
					}
					alpha[t][j] = logSumExp(terms) + emit[t][j]
				}
			}
			seqLL := logSumExp(alpha[T-1])
			ll += seqLL
			// Backward.
			beta := make([][]float64, T)
			beta[T-1] = make([]float64, k)
			for t := T - 2; t >= 0; t-- {
				beta[t] = make([]float64, k)
				for i := 0; i < k; i++ {
					terms := make([]float64, k)
					for j := 0; j < k; j++ {
						terms[j] = math.Log(m.Trans[i][j]+1e-300) + emit[t+1][j] + beta[t+1][j]
					}
					beta[t][i] = logSumExp(terms)
				}
			}
			// Accumulate gamma and xi.
			for t := 0; t < T; t++ {
				for i := 0; i < k; i++ {
					g := math.Exp(alpha[t][i] + beta[t][i] - seqLL)
					if t == 0 {
						initAcc[i] += g
					}
					gammaAcc[i] += g
					meanAcc[0][i] += g * seq[t].SizeBytes
					meanAcc[1][i] += g * seq[t].GapMs
					d0 := seq[t].SizeBytes - m.Mean[0][i]
					d1 := seq[t].GapMs - m.Mean[1][i]
					varAcc[0][i] += g * d0 * d0
					varAcc[1][i] += g * d1 * d1
				}
			}
			for t := 0; t < T-1; t++ {
				for i := 0; i < k; i++ {
					for j := 0; j < k; j++ {
						xi := math.Exp(alpha[t][i] + math.Log(m.Trans[i][j]+1e-300) +
							emit[t+1][j] + beta[t+1][j] - seqLL)
						transAcc[i][j] += xi
					}
				}
			}
		}
		curve = append(curve, ll/float64(obsCount))

		// M-step.
		normalize(initAcc)
		copy(m.Init, initAcc)
		for i := 0; i < k; i++ {
			normalize(transAcc[i])
			copy(m.Trans[i], transAcc[i])
			if gammaAcc[i] > 1e-9 {
				for f := 0; f < 2; f++ {
					m.Mean[f][i] = meanAcc[f][i] / gammaAcc[i]
					v := varAcc[f][i] / gammaAcc[i]
					if v < 1e-3 {
						v = 1e-3
					}
					m.Var[f][i] = v
				}
			}
		}
	}
	return m, curve, nil
}

func normalize(xs []float64) {
	var s float64
	for _, x := range xs {
		s += x
	}
	if s <= 0 {
		for i := range xs {
			xs[i] = 1 / float64(len(xs))
		}
		return
	}
	for i := range xs {
		xs[i] /= s
	}
}

// Sample draws a sequence of n observations.
func (m *Model) Sample(n int, r *stats.RNG) []Observation {
	out := make([]Observation, n)
	state := sampleIndex(m.Init, r)
	for t := 0; t < n; t++ {
		size := m.Mean[0][state] + math.Sqrt(m.Var[0][state])*r.NormFloat64()
		gap := m.Mean[1][state] + math.Sqrt(m.Var[1][state])*r.NormFloat64()
		if size < 0 {
			size = 0
		}
		if gap < 0 {
			gap = 0
		}
		out[t] = Observation{SizeBytes: size, GapMs: gap}
		state = sampleIndex(m.Trans[state], r)
	}
	return out
}

func sampleIndex(probs []float64, r *stats.RNG) int {
	u := r.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}

// LogLikelihood scores a sequence under the model (mean per
// observation).
func (m *Model) LogLikelihood(seq []Observation) float64 {
	T := len(seq)
	if T == 0 {
		return 0
	}
	k := m.N
	alpha := make([]float64, k)
	for i := 0; i < k; i++ {
		alpha[i] = math.Log(m.Init[i]+1e-300) + m.logEmit(seq[0])[i]
	}
	next := make([]float64, k)
	terms := make([]float64, k)
	for t := 1; t < T; t++ {
		emit := m.logEmit(seq[t])
		for j := 0; j < k; j++ {
			for i := 0; i < k; i++ {
				terms[i] = alpha[i] + math.Log(m.Trans[i][j]+1e-300)
			}
			next[j] = logSumExp(terms) + emit[j]
		}
		copy(alpha, next)
	}
	return logSumExp(alpha) / float64(T)
}
