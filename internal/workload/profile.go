// Package workload synthesizes the labeled "real" traffic dataset the
// paper's case study uses (Table 1: 4 macro-services, 11
// micro-applications, 30k+ flows). The paper curated real captures;
// real traces are unavailable here, so this package substitutes a
// stateful generator whose per-application statistical signatures —
// transport protocol mix, TCP state machine behaviour, packet-size and
// inter-arrival distributions, TTLs, window dynamics, header options —
// give each class a distinct, learnable fine-grained structure while
// obeying real protocol semantics (handshakes, monotone sequence
// numbers, ack progression).
package workload

import "trafficdiff/internal/packet"

// MacroService is the paper's 4-way coarse label.
type MacroService string

// Macro service labels from Table 1.
const (
	VideoStreaming    MacroService = "video_streaming"
	VideoConferencing MacroService = "video_conferencing"
	SocialMedia       MacroService = "social_media"
	IoTDevice         MacroService = "iot_device"
)

// Transport selects the generator state machine for a profile.
type Transport int

// Transport kinds.
const (
	TransportTCP Transport = iota
	TransportUDP
	TransportMixed // per-flow choice among TCP/UDP/ICMP (IoT)
)

// SizeProfile describes a packet-length distribution for one
// direction, in payload bytes.
type SizeProfile struct {
	// Modes are payload sizes; Weights their mixture weights; Jitter
	// the per-mode Gaussian spread.
	Modes   []float64
	Weights []float64
	Jitter  float64
}

// Profile is a micro-application's traffic signature.
type Profile struct {
	Name  string
	Macro MacroService
	// Table1Count is the flow count reported in the paper's Table 1.
	Table1Count int

	Transport Transport
	// ServerPorts are candidate server ports with Zipf-like preference
	// for the first entry ("port consolidation").
	ServerPorts []uint16

	// TTL is the typical server-side initial TTL observed at capture;
	// client side uses ClientTTL.
	TTL, ClientTTL uint8
	// TOS is the IP DSCP/TOS byte (conferencing apps mark EF).
	TOS uint8

	// FlowLenMean/FlowLenSigma parameterize a log-normal number of
	// packets per flow.
	FlowLenMean, FlowLenSigma float64

	// Down/Up size profiles (server->client and client->server).
	Down, Up SizeProfile

	// InterArrivalMeanMs is the mean packet gap; conferencing is
	// near-isochronous (low sigma), streaming is bursty (high sigma).
	InterArrivalMeanMs  float64
	InterArrivalSigmaMs float64

	// DownUpRatio is the probability a data packet travels downstream.
	DownUpRatio float64

	// TCP behaviour knobs (ignored for UDP transports).
	WindowBase   uint16  // typical advertised window
	WindowJitter uint16  // uniform jitter added to the base
	UseTimestamp bool    // TCP timestamp option on data packets
	UseSACK      bool    // SACK-permitted on SYN
	WScale       uint8   // window scale advertised on SYN
	MSS          uint16  // MSS advertised on SYN
	PushEvery    int     // PSH flag cadence on data packets
	BurstLen     float64 // mean packets per server burst

	// Mixed-transport weights (IoT): probability a flow is TCP / UDP /
	// ICMP. Must sum to ~1 for TransportMixed.
	MixTCP, MixUDP, MixICMP float64
}

// Catalog returns the 11 micro-application profiles matching the
// paper's Table 1, in the paper's order (netflix, youtube, amazon,
// twitch, teams, meet, zoom, facebook, twitter, instagram, other).
func Catalog() []Profile {
	return []Profile{
		{
			Name: "netflix", Macro: VideoStreaming, Table1Count: 4104,
			Transport: TransportTCP, ServerPorts: []uint16{443},
			TTL: 58, ClientTTL: 64, TOS: 0,
			FlowLenMean: 4.2, FlowLenSigma: 0.9,
			Down:               SizeProfile{Modes: []float64{1400, 1400, 800}, Weights: []float64{0.7, 0.2, 0.1}, Jitter: 40},
			Up:                 SizeProfile{Modes: []float64{0, 100}, Weights: []float64{0.85, 0.15}, Jitter: 10},
			InterArrivalMeanMs: 8, InterArrivalSigmaMs: 1.2,
			DownUpRatio: 0.78,
			WindowBase:  65160, WindowJitter: 300, UseTimestamp: true, UseSACK: true,
			WScale: 7, MSS: 1460, PushEvery: 12, BurstLen: 18,
		},
		{
			Name: "youtube", Macro: VideoStreaming, Table1Count: 2702,
			Transport: TransportUDP, ServerPorts: []uint16{443},
			TTL: 118, ClientTTL: 64, TOS: 0,
			FlowLenMean: 4.0, FlowLenSigma: 0.9,
			Down:               SizeProfile{Modes: []float64{1350, 1100}, Weights: []float64{0.8, 0.2}, Jitter: 60},
			Up:                 SizeProfile{Modes: []float64{35, 300}, Weights: []float64{0.75, 0.25}, Jitter: 12},
			InterArrivalMeanMs: 11, InterArrivalSigmaMs: 1.4,
			DownUpRatio: 0.72,
		},
		{
			Name: "amazon", Macro: VideoStreaming, Table1Count: 1509,
			Transport: TransportTCP, ServerPorts: []uint16{443},
			TTL: 238, ClientTTL: 128, TOS: 0,
			FlowLenMean: 3.9, FlowLenSigma: 0.85,
			Down:               SizeProfile{Modes: []float64{1380, 600}, Weights: []float64{0.75, 0.25}, Jitter: 50},
			Up:                 SizeProfile{Modes: []float64{0, 120}, Weights: []float64{0.8, 0.2}, Jitter: 15},
			InterArrivalMeanMs: 14, InterArrivalSigmaMs: 1.5,
			DownUpRatio: 0.74,
			WindowBase:  26883, WindowJitter: 500, UseTimestamp: false, UseSACK: true,
			WScale: 8, MSS: 1440, PushEvery: 8, BurstLen: 10,
		},
		{
			Name: "twitch", Macro: VideoStreaming, Table1Count: 1150,
			Transport: TransportTCP, ServerPorts: []uint16{443, 1935},
			TTL: 59, ClientTTL: 64, TOS: 0,
			FlowLenMean: 4.1, FlowLenSigma: 0.9,
			Down:               SizeProfile{Modes: []float64{1400, 950}, Weights: []float64{0.6, 0.4}, Jitter: 70},
			Up:                 SizeProfile{Modes: []float64{0, 80}, Weights: []float64{0.82, 0.18}, Jitter: 8},
			InterArrivalMeanMs: 6, InterArrivalSigmaMs: 1.8,
			DownUpRatio: 0.76,
			WindowBase:  49232, WindowJitter: 800, UseTimestamp: true, UseSACK: false,
			WScale: 6, MSS: 1460, PushEvery: 5, BurstLen: 24,
		},
		{
			Name: "teams", Macro: VideoConferencing, Table1Count: 3886,
			Transport: TransportUDP, ServerPorts: []uint16{3478, 3479, 3480},
			TTL: 110, ClientTTL: 128, TOS: 0xb8, // EF
			FlowLenMean: 4.3, FlowLenSigma: 0.7,
			Down:               SizeProfile{Modes: []float64{1000, 180}, Weights: []float64{0.55, 0.45}, Jitter: 90},
			Up:                 SizeProfile{Modes: []float64{850, 150}, Weights: []float64{0.5, 0.5}, Jitter: 80},
			InterArrivalMeanMs: 18, InterArrivalSigmaMs: 0.25,
			DownUpRatio: 0.52,
		},
		{
			Name: "meet", Macro: VideoConferencing, Table1Count: 1313,
			Transport: TransportUDP, ServerPorts: []uint16{19305, 19306, 443},
			TTL: 119, ClientTTL: 64, TOS: 0x88, // AF41
			FlowLenMean: 4.2, FlowLenSigma: 0.7,
			Down:               SizeProfile{Modes: []float64{1100, 250}, Weights: []float64{0.6, 0.4}, Jitter: 100},
			Up:                 SizeProfile{Modes: []float64{900, 200}, Weights: []float64{0.55, 0.45}, Jitter: 90},
			InterArrivalMeanMs: 15, InterArrivalSigmaMs: 0.3,
			DownUpRatio: 0.5,
		},
		{
			Name: "zoom", Macro: VideoConferencing, Table1Count: 1312,
			Transport: TransportUDP, ServerPorts: []uint16{8801, 8802, 3478},
			TTL: 49, ClientTTL: 64, TOS: 0x68, // AF31
			FlowLenMean: 4.25, FlowLenSigma: 0.7,
			Down:               SizeProfile{Modes: []float64{1050, 300, 60}, Weights: []float64{0.5, 0.35, 0.15}, Jitter: 70},
			Up:                 SizeProfile{Modes: []float64{950, 250, 60}, Weights: []float64{0.45, 0.4, 0.15}, Jitter: 70},
			InterArrivalMeanMs: 13, InterArrivalSigmaMs: 0.3,
			DownUpRatio: 0.5,
		},
		{
			Name: "facebook", Macro: SocialMedia, Table1Count: 1477,
			Transport: TransportTCP, ServerPorts: []uint16{443},
			TTL: 86, ClientTTL: 64, TOS: 0,
			FlowLenMean: 3.8, FlowLenSigma: 1.0,
			Down:               SizeProfile{Modes: []float64{1300, 500, 150}, Weights: []float64{0.4, 0.35, 0.25}, Jitter: 90},
			Up:                 SizeProfile{Modes: []float64{0, 350}, Weights: []float64{0.65, 0.35}, Jitter: 50},
			InterArrivalMeanMs: 24, InterArrivalSigmaMs: 2.0,
			DownUpRatio: 0.62,
			WindowBase:  31856, WindowJitter: 700, UseTimestamp: true, UseSACK: true,
			WScale: 9, MSS: 1460, PushEvery: 3, BurstLen: 5,
		},
		{
			Name: "twitter", Macro: SocialMedia, Table1Count: 1260,
			Transport: TransportTCP, ServerPorts: []uint16{443},
			TTL: 111, ClientTTL: 64, TOS: 0,
			FlowLenMean: 3.8, FlowLenSigma: 1.0,
			Down:               SizeProfile{Modes: []float64{1200, 400, 90}, Weights: []float64{0.35, 0.35, 0.3}, Jitter: 80},
			Up:                 SizeProfile{Modes: []float64{0, 250}, Weights: []float64{0.6, 0.4}, Jitter: 40},
			InterArrivalMeanMs: 30, InterArrivalSigmaMs: 2.2,
			DownUpRatio: 0.58,
			WindowBase:  42340, WindowJitter: 900, UseTimestamp: false, UseSACK: false,
			WScale: 5, MSS: 1400, PushEvery: 2, BurstLen: 4,
		},
		{
			Name: "instagram", Macro: SocialMedia, Table1Count: 873,
			Transport: TransportTCP, ServerPorts: []uint16{443},
			TTL: 87, ClientTTL: 64, TOS: 0,
			FlowLenMean: 3.9, FlowLenSigma: 1.0,
			Down:               SizeProfile{Modes: []float64{1400, 900, 200}, Weights: []float64{0.5, 0.3, 0.2}, Jitter: 60},
			Up:                 SizeProfile{Modes: []float64{0, 180}, Weights: []float64{0.7, 0.3}, Jitter: 30},
			InterArrivalMeanMs: 20, InterArrivalSigmaMs: 1.9,
			DownUpRatio: 0.68,
			WindowBase:  58040, WindowJitter: 600, UseTimestamp: true, UseSACK: true,
			WScale: 8, MSS: 1460, PushEvery: 6, BurstLen: 8,
		},
		{
			Name: "other", Macro: IoTDevice, Table1Count: 3901,
			Transport: TransportMixed, ServerPorts: []uint16{1883, 8883, 53, 123, 443},
			TTL: 64, ClientTTL: 255, TOS: 0,
			FlowLenMean: 3.7, FlowLenSigma: 1.1,
			Down:               SizeProfile{Modes: []float64{60, 200}, Weights: []float64{0.7, 0.3}, Jitter: 20},
			Up:                 SizeProfile{Modes: []float64{45, 150}, Weights: []float64{0.7, 0.3}, Jitter: 15},
			InterArrivalMeanMs: 40, InterArrivalSigmaMs: 2.5,
			DownUpRatio: 0.45,
			WindowBase:  5840, WindowJitter: 200, UseTimestamp: false, UseSACK: false,
			WScale: 2, MSS: 1460, PushEvery: 1, BurstLen: 2,
			MixTCP: 0.5, MixUDP: 0.35, MixICMP: 0.15,
		},
	}
}

// ProfileByName looks a profile up in the catalog; ok is false for
// unknown names.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ClassNames returns the 11 micro labels in catalog order.
func ClassNames() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, p := range cat {
		out[i] = p.Name
	}
	return out
}

// MacroOf maps a micro label to its macro service; ok is false for
// unknown names.
func MacroOf(name string) (MacroService, bool) {
	p, ok := ProfileByName(name)
	if !ok {
		return "", false
	}
	return p.Macro, true
}

// protoFor draws the transport for one flow of p.
func (p Profile) protoFor(r randSource) packet.IPProtocol {
	switch p.Transport {
	case TransportTCP:
		return packet.ProtoTCP
	case TransportUDP:
		return packet.ProtoUDP
	default:
		u := r.Float64()
		switch {
		case u < p.MixTCP:
			return packet.ProtoTCP
		case u < p.MixTCP+p.MixUDP:
			return packet.ProtoUDP
		default:
			return packet.ProtoICMP
		}
	}
}

// randSource is the small RNG surface the profile helpers need; it is
// satisfied by *stats.RNG.
type randSource interface {
	Float64() float64
	Intn(n int) int
}
