package workload

import (
	"testing"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
)

func TestCatalogMatchesTable1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 11 {
		t.Fatalf("catalog size = %d, want 11", len(cat))
	}
	wantCounts := map[string]int{
		"netflix": 4104, "youtube": 2702, "amazon": 1509, "twitch": 1150,
		"teams": 3886, "meet": 1313, "zoom": 1312,
		"facebook": 1477, "twitter": 1260, "instagram": 873,
		"other": 3901,
	}
	total := 0
	for _, p := range cat {
		if wantCounts[p.Name] != p.Table1Count {
			t.Errorf("%s count = %d, want %d", p.Name, p.Table1Count, wantCounts[p.Name])
		}
		total += p.Table1Count
	}
	if total != 23487 {
		t.Errorf("total flows = %d", total)
	}
	// Macro groupings per Table 1.
	macros := map[string]MacroService{
		"netflix": VideoStreaming, "youtube": VideoStreaming,
		"teams": VideoConferencing, "facebook": SocialMedia, "other": IoTDevice,
	}
	for name, want := range macros {
		if got, _ := MacroOf(name); got != want {
			t.Errorf("MacroOf(%s) = %v", name, got)
		}
	}
	if _, ok := MacroOf("nope"); ok {
		t.Error("unknown class should not resolve")
	}
}

func TestGenerateFlowDeterministic(t *testing.T) {
	p, _ := ProfileByName("netflix")
	g1, g2 := NewGenerator(42), NewGenerator(42)
	f1, f2 := g1.GenerateFlow(p), g2.GenerateFlow(p)
	if len(f1.Packets) != len(f2.Packets) {
		t.Fatalf("lengths differ: %d vs %d", len(f1.Packets), len(f2.Packets))
	}
	for i := range f1.Packets {
		if string(f1.Packets[i].Data) != string(f2.Packets[i].Data) {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestTCPFlowStructure(t *testing.T) {
	p, _ := ProfileByName("amazon")
	g := NewGenerator(7)
	f := g.GenerateFlow(p)
	if len(f.Packets) < 7 {
		t.Fatalf("flow too short: %d", len(f.Packets))
	}
	// All packets TCP — this is the Figure 2 property for Amazon.
	for i, pk := range f.Packets {
		if pk.TCP == nil {
			t.Fatalf("packet %d is not TCP", i)
		}
	}
	// Handshake: SYN, SYN|ACK, ACK.
	if f.Packets[0].TCP.Flags != packet.FlagSYN {
		t.Errorf("first packet flags = %v", f.Packets[0].TCP.Flags)
	}
	if f.Packets[1].TCP.Flags != packet.FlagSYN|packet.FlagACK {
		t.Errorf("second packet flags = %v", f.Packets[1].TCP.Flags)
	}
	if f.Packets[2].TCP.Flags != packet.FlagACK {
		t.Errorf("third packet flags = %v", f.Packets[2].TCP.Flags)
	}
	// SYN carries an MSS option.
	if len(f.Packets[0].TCP.Options) < 4 || f.Packets[0].TCP.Options[0] != 2 {
		t.Errorf("SYN options = %v", f.Packets[0].TCP.Options)
	}
	// Timestamps strictly ordered.
	for i := 1; i < len(f.Packets); i++ {
		if f.Packets[i].Timestamp.Before(f.Packets[i-1].Timestamp) {
			t.Fatal("timestamps went backwards")
		}
	}
}

func TestTCPSequenceProgression(t *testing.T) {
	p, _ := ProfileByName("netflix")
	g := NewGenerator(11)
	f := g.GenerateFlow(p)
	// Per direction, sequence numbers never decrease (mod wraparound,
	// which these short flows never hit).
	lastSeq := map[uint16]uint32{}
	for _, pk := range f.Packets {
		src := pk.TCP.SrcPort
		if last, ok := lastSeq[src]; ok {
			if pk.TCP.Seq < last {
				t.Fatalf("seq regression on port %d: %d < %d", src, pk.TCP.Seq, last)
			}
		}
		lastSeq[src] = pk.TCP.Seq
	}
}

func TestUDPFlowProtocolPurity(t *testing.T) {
	p, _ := ProfileByName("teams")
	g := NewGenerator(3)
	f := g.GenerateFlow(p)
	for i, pk := range f.Packets {
		if pk.UDP == nil {
			t.Fatalf("teams packet %d is not UDP", i)
		}
	}
	// Teams marks EF.
	if f.Packets[0].IPv4.TOS != 0xb8 {
		t.Errorf("teams TOS = %#x", f.Packets[0].IPv4.TOS)
	}
}

func TestICMPPairing(t *testing.T) {
	p, _ := ProfileByName("other")
	g := NewGenerator(5)
	// Force ICMP by drawing flows until one is ICMP.
	var f *flow.Flow
	for i := 0; i < 200; i++ {
		cand := g.GenerateFlow(p)
		if cand.Packets[0].ICMP != nil {
			f = cand
			break
		}
	}
	if f == nil {
		t.Fatal("no ICMP flow generated in 200 draws")
	}
	if len(f.Packets)%2 != 0 {
		t.Fatalf("icmp flow has odd packet count %d", len(f.Packets))
	}
	for i := 0; i < len(f.Packets); i += 2 {
		req, rep := f.Packets[i].ICMP, f.Packets[i+1].ICMP
		if req.Type != packet.ICMPEchoRequest || rep.Type != packet.ICMPEchoReply {
			t.Fatalf("pair %d types = %d,%d", i/2, req.Type, rep.Type)
		}
		if req.ID() != rep.ID() || req.Seq() != rep.Seq() {
			t.Fatalf("pair %d id/seq mismatch", i/2)
		}
	}
}

func TestGenerateDatasetImbalance(t *testing.T) {
	ds, err := Generate(Config{Seed: 1, Scale: 0.01, MaxPacketsPerFlow: 16})
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.ClassCounts()
	if counts["netflix"] <= counts["instagram"] {
		t.Errorf("imbalance not preserved: netflix=%d instagram=%d", counts["netflix"], counts["instagram"])
	}
	if len(ds.Classes) != 11 {
		t.Errorf("classes = %v", ds.Classes)
	}
}

func TestGenerateBalanced(t *testing.T) {
	ds, err := Generate(Config{Seed: 1, FlowsPerClass: 5, MaxPacketsPerFlow: 12})
	if err != nil {
		t.Fatal(err)
	}
	for c, n := range ds.ClassCounts() {
		if n != 5 {
			t.Errorf("class %s has %d flows", c, n)
		}
	}
}

func TestGenerateOnlySubset(t *testing.T) {
	ds, err := Generate(Config{Seed: 1, FlowsPerClass: 3, Only: []string{"netflix", "youtube"}, MaxPacketsPerFlow: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Flows) != 6 || len(ds.Classes) != 2 {
		t.Fatalf("flows=%d classes=%v", len(ds.Flows), ds.Classes)
	}
}

func TestGenerateRejectsUnknownClass(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, FlowsPerClass: 1, Only: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

func TestGenerateRejectsEmptyConfig(t *testing.T) {
	if _, err := Generate(Config{Seed: 1}); err == nil {
		t.Fatal("expected error for missing scale")
	}
}

func TestSplitStratified(t *testing.T) {
	ds, err := Generate(Config{Seed: 2, FlowsPerClass: 10, MaxPacketsPerFlow: 10})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.8, 99)
	if len(train.Flows)+len(test.Flows) != len(ds.Flows) {
		t.Fatal("split lost flows")
	}
	trainCounts, testCounts := train.ClassCounts(), test.ClassCounts()
	for _, c := range ds.Classes {
		if trainCounts[c] != 8 || testCounts[c] != 2 {
			t.Errorf("class %s split %d/%d, want 8/2", c, trainCounts[c], testCounts[c])
		}
	}
}

func TestSplitTinyClassKeepsBothSides(t *testing.T) {
	ds, err := Generate(Config{Seed: 3, FlowsPerClass: 2, Only: []string{"zoom"}, MaxPacketsPerFlow: 8})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.99, 1)
	if len(train.Flows) == 0 || len(test.Flows) == 0 {
		t.Fatalf("degenerate split %d/%d", len(train.Flows), len(test.Flows))
	}
}

func TestMaxPacketsCap(t *testing.T) {
	ds, err := Generate(Config{Seed: 4, FlowsPerClass: 3, MaxPacketsPerFlow: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ds.Flows {
		if len(f.Packets) > 9 {
			t.Fatalf("flow with %d packets exceeds cap", len(f.Packets))
		}
	}
}

func TestCountVectorAlignment(t *testing.T) {
	ds, err := Generate(Config{Seed: 5, FlowsPerClass: 2, Only: []string{"netflix", "zoom"}, MaxPacketsPerFlow: 8})
	if err != nil {
		t.Fatal(err)
	}
	v := ds.CountVector()
	if len(v) != 2 || v[0] != 2 || v[1] != 2 {
		t.Fatalf("count vector = %v", v)
	}
}

func TestDistinctClassesHaveDistinctSignatures(t *testing.T) {
	// Sanity: the generator must make netflix (TCP) and teams (UDP)
	// trivially separable at the protocol level.
	g := NewGenerator(8)
	nf, _ := ProfileByName("netflix")
	tm, _ := ProfileByName("teams")
	fn := g.GenerateFlow(nf)
	ft := g.GenerateFlow(tm)
	if fn.DominantProtocol() != packet.ProtoTCP {
		t.Error("netflix flows should be TCP-dominant")
	}
	if ft.DominantProtocol() != packet.ProtoUDP {
		t.Error("teams flows should be UDP-dominant")
	}
}

func TestClassNamesOrder(t *testing.T) {
	names := ClassNames()
	if names[0] != "netflix" || names[len(names)-1] != "other" {
		t.Fatalf("class order = %v", names)
	}
}

func TestMacroLabel(t *testing.T) {
	if MacroLabel("zoom") != string(VideoConferencing) {
		t.Error("zoom macro wrong")
	}
	if MacroLabel("bogus") != "" {
		t.Error("bogus macro should be empty")
	}
}

func TestTCPAckTracksPeerSequence(t *testing.T) {
	// Stateful correctness: each packet's Ack must equal the peer
	// direction's next expected sequence number at that point.
	p, _ := ProfileByName("facebook")
	g := NewGenerator(23)
	f := g.GenerateFlow(p)
	nextSeq := map[uint16]uint32{}
	for i, pk := range f.Packets {
		src, dst := pk.TCP.SrcPort, pk.TCP.DstPort
		if want, ok := nextSeq[dst]; ok {
			if pk.TCP.Ack != want {
				t.Fatalf("packet %d: ack %d, want peer seq %d", i, pk.TCP.Ack, want)
			}
		}
		consumed := uint32(len(pk.Payload))
		if pk.TCP.Flags&(packet.FlagSYN|packet.FlagFIN) != 0 {
			consumed++
		}
		nextSeq[src] = pk.TCP.Seq + consumed
	}
}

func TestGeneratorTimestampsAdvanceAcrossFlows(t *testing.T) {
	g := NewGenerator(29)
	p, _ := ProfileByName("zoom")
	f1 := g.GenerateFlow(p)
	f2 := g.GenerateFlow(p)
	if !f2.Start().After(f1.Start()) {
		t.Fatal("second flow does not start after the first")
	}
}

func TestConferencingIsochrony(t *testing.T) {
	// Conferencing profiles have low inter-arrival variance relative
	// to streaming — the timing signature classifiers can use.
	g := NewGenerator(31)
	cv := func(name string) float64 {
		p, _ := ProfileByName(name)
		f := g.GenerateFlow(p)
		var gaps []float64
		for i := 1; i < len(f.Packets); i++ {
			gaps = append(gaps, f.Packets[i].Timestamp.Sub(f.Packets[i-1].Timestamp).Seconds())
		}
		var mean, sq float64
		for _, x := range gaps {
			mean += x
		}
		mean /= float64(len(gaps))
		for _, x := range gaps {
			sq += (x - mean) * (x - mean)
		}
		return (sq / float64(len(gaps))) / (mean * mean) // squared CV
	}
	if cv("teams") >= cv("twitch") {
		t.Errorf("teams timing (cv²=%v) should be steadier than twitch (cv²=%v)", cv("teams"), cv("twitch"))
	}
}
