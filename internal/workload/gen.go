package workload

import (
	"encoding/binary"
	"math"
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/stats"
)

// Generator produces labeled flows from profiles. It is deterministic
// for a given seed and not safe for concurrent use.
type Generator struct {
	rng *stats.RNG
	b   packet.Builder
	// MaxPackets truncates generated flows (0 = no cap). Keeping flows
	// short makes tests fast; experiments set this to the paper's 1024.
	MaxPackets int

	now time.Time
}

// NewGenerator returns a generator seeded with seed, starting its
// clock at a fixed epoch so datasets are reproducible.
func NewGenerator(seed uint64) *Generator {
	return &Generator{
		rng: stats.NewRNG(seed),
		now: time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC),
	}
}

// sampleSize draws a payload size from a SizeProfile, clamped to
// [0, 1460].
func sampleSize(r *stats.RNG, sp SizeProfile) int {
	cat := stats.NewCategorical(sp.Weights)
	i := cat.SampleIndex(r)
	v := sp.Modes[i] + sp.Jitter*r.NormFloat64()
	if v < 0 {
		v = 0
	}
	if v > 1460 {
		v = 1460
	}
	return int(v)
}

// flowLen draws the packet count for a flow of p.
func (g *Generator) flowLen(p Profile) int {
	n := int(stats.LogNormal{Mu: p.FlowLenMean, Sigma: p.FlowLenSigma}.Sample(g.rng))
	if n < 4 {
		n = 4
	}
	if g.MaxPackets > 0 && n > g.MaxPackets {
		n = g.MaxPackets
	}
	return n
}

// interArrival draws the gap to the next packet.
func (g *Generator) interArrival(p Profile) time.Duration {
	ms := stats.LogNormal{
		Mu:    math.Log(p.InterArrivalMeanMs),
		Sigma: p.InterArrivalSigmaMs * 0.3,
	}.Sample(g.rng)
	if ms < 0.05 {
		ms = 0.05
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// addrs draws a (client, server) address pair. Client addresses live
// in 10/8; server addresses are derived from the profile name so each
// service occupies a stable but distinct block (they are excluded from
// classification features regardless, per the paper's footnote 1).
func (g *Generator) addrs(p Profile) (client, server [4]byte) {
	client = [4]byte{10, byte(g.rng.Intn(256)), byte(g.rng.Intn(256)), byte(1 + g.rng.Intn(254))}
	h := uint32(2166136261)
	for _, c := range p.Name {
		h = (h ^ uint32(c)) * 16777619
	}
	var block [4]byte
	binary.BigEndian.PutUint32(block[:], h)
	server = [4]byte{byte(23 + block[0]%160), block[1], block[2], byte(1 + g.rng.Intn(254))}
	return client, server
}

// serverPort draws a server port with Zipf preference for the first
// candidates ("port consolidation").
func (g *Generator) serverPort(p Profile) uint16 {
	if len(p.ServerPorts) == 1 {
		return p.ServerPorts[0]
	}
	z := stats.NewZipf(len(p.ServerPorts), 1.5)
	return p.ServerPorts[z.SampleRank(g.rng)-1]
}

// GenerateFlow produces one labeled flow for profile p.
func (g *Generator) GenerateFlow(p Profile) *flow.Flow {
	// Space flows out in capture time.
	g.now = g.now.Add(time.Duration(1+g.rng.Intn(2000)) * time.Millisecond)
	switch p.protoFor(g.rng) {
	case packet.ProtoTCP:
		return g.tcpFlow(p)
	case packet.ProtoUDP:
		return g.udpFlow(p)
	default:
		return g.icmpFlow(p)
	}
}

// tcpState tracks one direction's sequence space.
type tcpState struct {
	seq uint32
}

// tcpFlow simulates a full stateful TCP conversation: three-way
// handshake, windowed data transfer with correct sequence/ack
// progression and per-profile option usage, and FIN teardown.
func (g *Generator) tcpFlow(p Profile) *flow.Flow {
	client, server := g.addrs(p)
	cPort := uint16(32768 + g.rng.Intn(28000))
	sPort := g.serverPort(p)
	n := g.flowLen(p)

	f := &flow.Flow{Label: p.Name}
	ts := g.now
	cli := tcpState{seq: uint32(g.rng.Uint64())}
	srv := tcpState{seq: uint32(g.rng.Uint64())}

	window := func() uint16 {
		w := int(p.WindowBase)
		if p.WindowJitter > 0 {
			w += g.rng.Intn(int(p.WindowJitter))
		}
		if w > 65535 {
			w = 65535
		}
		return uint16(w)
	}

	clientIP := func() packet.IPv4 {
		return packet.IPv4{TTL: p.ClientTTL, TOS: p.TOS, ID: uint16(g.rng.Intn(65536)),
			Flags: packet.IPv4DontFragment, SrcIP: client, DstIP: server}
	}
	serverIP := func() packet.IPv4 {
		return packet.IPv4{TTL: p.TTL, TOS: p.TOS, ID: uint16(g.rng.Intn(65536)),
			Flags: packet.IPv4DontFragment, SrcIP: server, DstIP: client}
	}

	synOpts := func() []byte {
		opts := []byte{2, 4, byte(p.MSS >> 8), byte(p.MSS)}
		if p.UseSACK {
			opts = append(opts, 4, 2)
		}
		if p.WScale > 0 {
			opts = append(opts, 3, 3, p.WScale)
		}
		for len(opts)%4 != 0 {
			opts = append(opts, 1) // NOP pad
		}
		return opts
	}
	tsOpts := func() []byte {
		if !p.UseTimestamp {
			return nil
		}
		opt := make([]byte, 12)
		opt[0], opt[1] = 1, 1 // NOP NOP
		opt[2], opt[3] = 8, 10
		binary.BigEndian.PutUint32(opt[4:], uint32(ts.UnixMilli()))
		binary.BigEndian.PutUint32(opt[8:], uint32(ts.UnixMilli())-10)
		return opt
	}

	emit := func(fromClient bool, flags packet.TCPFlags, opts []byte, payloadLen int) {
		var ip packet.IPv4
		var tcp packet.TCP
		if fromClient {
			ip = clientIP()
			tcp = packet.TCP{SrcPort: cPort, DstPort: sPort, Seq: cli.seq, Ack: srv.seq}
		} else {
			ip = serverIP()
			tcp = packet.TCP{SrcPort: sPort, DstPort: cPort, Seq: srv.seq, Ack: cli.seq}
		}
		tcp.Flags = flags
		tcp.Window = window()
		tcp.Options = opts
		f.Append(g.b.BuildTCP(ts, ip, tcp, make([]byte, payloadLen)))
		consumed := uint32(payloadLen)
		if flags&(packet.FlagSYN|packet.FlagFIN) != 0 {
			consumed++
		}
		if fromClient {
			cli.seq += consumed
		} else {
			srv.seq += consumed
		}
		ts = ts.Add(g.interArrival(p))
	}

	// Handshake.
	emit(true, packet.FlagSYN, synOpts(), 0)
	emit(false, packet.FlagSYN|packet.FlagACK, synOpts(), 0)
	emit(true, packet.FlagACK, nil, 0)

	// Data phase with per-burst direction persistence.
	dataPkts := n - 7 // reserve handshake(3) + teardown(4)
	if dataPkts < 1 {
		dataPkts = 1
	}
	sent := 0
	for sent < dataPkts {
		down := g.rng.Bool(p.DownUpRatio)
		burst := 1
		if p.BurstLen > 1 {
			burst = 1 + g.rng.Intn(int(p.BurstLen))
		}
		for i := 0; i < burst && sent < dataPkts; i++ {
			flags := packet.FlagACK
			if p.PushEvery > 0 && sent%p.PushEvery == 0 {
				flags |= packet.FlagPSH
			}
			var size int
			if down {
				size = sampleSize(g.rng, p.Down)
			} else {
				size = sampleSize(g.rng, p.Up)
			}
			emit(!down, flags, tsOpts(), size)
			sent++
		}
	}

	// Teardown: FIN/ACK exchange both ways.
	emit(true, packet.FlagFIN|packet.FlagACK, nil, 0)
	emit(false, packet.FlagACK, nil, 0)
	emit(false, packet.FlagFIN|packet.FlagACK, nil, 0)
	emit(true, packet.FlagACK, nil, 0)

	return g.trim(f, n)
}

// udpFlow simulates a bidirectional datagram stream (RTP-like for
// conferencing, QUIC-like for streaming).
func (g *Generator) udpFlow(p Profile) *flow.Flow {
	client, server := g.addrs(p)
	cPort := uint16(32768 + g.rng.Intn(28000))
	sPort := g.serverPort(p)
	n := g.flowLen(p)

	f := &flow.Flow{Label: p.Name}
	ts := g.now
	for i := 0; i < n; i++ {
		down := g.rng.Bool(p.DownUpRatio)
		var ip packet.IPv4
		var udp packet.UDP
		var size int
		if down {
			ip = packet.IPv4{TTL: p.TTL, TOS: p.TOS, ID: uint16(g.rng.Intn(65536)), SrcIP: server, DstIP: client}
			udp = packet.UDP{SrcPort: sPort, DstPort: cPort}
			size = sampleSize(g.rng, p.Down)
		} else {
			ip = packet.IPv4{TTL: p.ClientTTL, TOS: p.TOS, ID: uint16(g.rng.Intn(65536)), SrcIP: client, DstIP: server}
			udp = packet.UDP{SrcPort: cPort, DstPort: sPort}
			size = sampleSize(g.rng, p.Up)
		}
		f.Append(g.b.BuildUDP(ts, ip, udp, make([]byte, size)))
		ts = ts.Add(g.interArrival(p))
	}
	return f
}

// icmpFlow simulates an echo request/reply ping train (IoT keepalives).
func (g *Generator) icmpFlow(p Profile) *flow.Flow {
	client, server := g.addrs(p)
	n := g.flowLen(p)
	if n%2 == 1 {
		n++ // request/reply pairs
	}
	id := uint16(g.rng.Intn(65536))
	f := &flow.Flow{Label: p.Name}
	ts := g.now
	for i := 0; i < n/2; i++ {
		var req packet.ICMPv4
		req.Type = packet.ICMPEchoRequest
		req.SetEcho(id, uint16(i))
		ipReq := packet.IPv4{TTL: p.ClientTTL, ID: uint16(g.rng.Intn(65536)), SrcIP: client, DstIP: server}
		f.Append(g.b.BuildICMP(ts, ipReq, req, make([]byte, 56)))
		ts = ts.Add(time.Duration(1+g.rng.Intn(20)) * time.Millisecond)

		var rep packet.ICMPv4
		rep.Type = packet.ICMPEchoReply
		rep.SetEcho(id, uint16(i))
		ipRep := packet.IPv4{TTL: p.TTL, ID: uint16(g.rng.Intn(65536)), SrcIP: server, DstIP: client}
		f.Append(g.b.BuildICMP(ts, ipRep, rep, make([]byte, 56)))
		ts = ts.Add(g.interArrival(p))
	}
	return f
}

// trim caps the flow at n packets (TCP generation may run slightly
// over the sampled length because teardown always completes).
func (g *Generator) trim(f *flow.Flow, n int) *flow.Flow {
	if g.MaxPackets > 0 && n > g.MaxPackets {
		n = g.MaxPackets
	}
	if n > 0 && len(f.Packets) > n {
		f.Packets = f.Packets[:n]
	}
	return f
}
