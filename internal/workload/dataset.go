package workload

import (
	"fmt"
	"sort"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/stats"
)

// Dataset is a labeled flow collection with train/test split support.
type Dataset struct {
	Flows []*flow.Flow
	// Classes lists the micro labels present, in catalog order.
	Classes []string
}

// Config controls dataset generation.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Scale multiplies each profile's Table1Count; e.g. Scale=0.01
	// yields a ~300-flow dataset with the paper's class imbalance. If
	// FlowsPerClass > 0 it wins and every class gets that many flows
	// (the balanced subset used for fine-tuning, paper §3.2).
	Scale         float64
	FlowsPerClass int
	// MaxPacketsPerFlow caps flow length (0 = profile-driven).
	MaxPacketsPerFlow int
	// Only restricts generation to the named classes (nil = all 11).
	Only []string
}

// Generate builds a labeled dataset per cfg.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Scale <= 0 && cfg.FlowsPerClass <= 0 {
		return nil, fmt.Errorf("workload: config needs Scale or FlowsPerClass")
	}
	gen := NewGenerator(cfg.Seed)
	gen.MaxPackets = cfg.MaxPacketsPerFlow

	keep := map[string]bool{}
	for _, name := range cfg.Only {
		if _, ok := ProfileByName(name); !ok {
			return nil, fmt.Errorf("workload: unknown class %q", name)
		}
		keep[name] = true
	}

	ds := &Dataset{}
	for _, p := range Catalog() {
		if len(keep) > 0 && !keep[p.Name] {
			continue
		}
		n := cfg.FlowsPerClass
		if n <= 0 {
			n = int(float64(p.Table1Count)*cfg.Scale + 0.5)
			if n < 1 {
				n = 1
			}
		}
		for i := 0; i < n; i++ {
			ds.Flows = append(ds.Flows, gen.GenerateFlow(p))
		}
		ds.Classes = append(ds.Classes, p.Name)
	}
	return ds, nil
}

// ClassCounts returns flow counts per micro label.
func (d *Dataset) ClassCounts() map[string]int {
	out := map[string]int{}
	for _, f := range d.Flows {
		out[f.Label]++
	}
	return out
}

// CountVector returns counts aligned with d.Classes.
func (d *Dataset) CountVector() []float64 {
	counts := d.ClassCounts()
	out := make([]float64, len(d.Classes))
	for i, c := range d.Classes {
		out[i] = float64(counts[c])
	}
	return out
}

// Split partitions the dataset into train/test with the given train
// fraction, stratified by class so every label appears on both sides
// (the paper uses a conventional 80-20 split).
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, test *Dataset) {
	r := stats.NewRNG(seed)
	byClass := map[string][]*flow.Flow{}
	for _, f := range d.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	labels := make([]string, 0, len(byClass))
	for l := range byClass {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	train = &Dataset{Classes: d.Classes}
	test = &Dataset{Classes: d.Classes}
	for _, l := range labels {
		fs := byClass[l]
		r.Shuffle(len(fs), func(i, j int) { fs[i], fs[j] = fs[j], fs[i] })
		cut := int(float64(len(fs)) * trainFrac)
		if cut < 1 && len(fs) > 1 {
			cut = 1
		}
		if cut >= len(fs) && len(fs) > 1 {
			cut = len(fs) - 1
		}
		train.Flows = append(train.Flows, fs[:cut]...)
		test.Flows = append(test.Flows, fs[cut:]...)
	}
	return train, test
}

// MacroLabel maps a flow's micro label to its macro service, or "" if
// unknown.
func MacroLabel(micro string) string {
	m, ok := MacroOf(micro)
	if !ok {
		return ""
	}
	return string(m)
}
