package eval

import (
	"strings"
	"testing"
)

// goodReport builds a plausible healthy frontier: int8 few-step points
// much faster than the fp32/64-step reference with accuracy intact.
func goodReport() *FrontierReport {
	return &FrontierReport{Points: []FrontierPoint{
		{Precision: "fp32", Steps: 64, FlowsPerS: 10, Speedup: 1, RFMicro: 0.80, RFMacro: 0.90, Reference: true},
		{Precision: "fp32", Steps: 8, FlowsPerS: 60, Speedup: 6, RFMicro: 0.78, RFMacro: 0.88},
		{Precision: "int8", Steps: 8, FlowsPerS: 70, Speedup: 7, RFMicro: 0.79, RFMacro: 0.89},
		{Precision: "int8", Steps: 4, FlowsPerS: 120, Speedup: 12, RFMicro: 0.76, RFMacro: 0.85},
	}}
}

func TestGateFrontierPasses(t *testing.T) {
	if err := GateFrontier(goodReport(), 0.05, 2); err != nil {
		t.Fatalf("healthy frontier failed the gate: %v", err)
	}
}

// TestGateFrontierCatchesBadFidelity is the deliberately-bad
// configuration the acceptance criteria require: a quantized point
// whose accuracy collapsed must fail the gate.
func TestGateFrontierCatchesBadFidelity(t *testing.T) {
	rep := goodReport()
	rep.Points[3].RFMicro = 0.40 // int8/4-step collapsed
	err := GateFrontier(rep, 0.05, 2)
	if err == nil {
		t.Fatal("collapsed int8 point passed the fidelity gate")
	}
	if !strings.Contains(err.Error(), "int8/4-step") {
		t.Fatalf("gate error does not name the failing point: %v", err)
	}
}

func TestGateFrontierCatchesMissingSpeedup(t *testing.T) {
	rep := goodReport()
	for i := range rep.Points {
		if rep.Points[i].Precision == "int8" {
			rep.Points[i].Speedup = 1.1 // int8 barely faster: not worth shipping
		}
	}
	if err := GateFrontier(rep, 0.05, 2); err == nil {
		t.Fatal("sub-2x int8 frontier passed the speedup gate")
	}
}

func TestGateFrontierRejectsMalformedReports(t *testing.T) {
	// No reference point.
	rep := goodReport()
	rep.Points[0].Reference = false
	if err := GateFrontier(rep, 0.05, 0); err == nil {
		t.Fatal("report without a reference passed")
	}
	// Two reference points.
	rep = goodReport()
	rep.Points[1].Reference = true
	if err := GateFrontier(rep, 0.05, 0); err == nil {
		t.Fatal("report with two references passed")
	}
	// Negative tolerance is a configuration bug, not a lenient gate.
	if err := GateFrontier(goodReport(), -0.1, 0); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

// TestRunFrontierSweep runs the real sweep end to end at test scale:
// every configured point must appear with positive throughput and
// in-range accuracy, the reference must be fp32 at RefSteps, and
// few-step points must be faster than the reference.
func TestRunFrontierSweep(t *testing.T) {
	cfg := DefaultFrontierConfig()
	cfg.TrainFlows = 6
	cfg.TestFlows = 4
	cfg.GenFlows = 3
	cfg.Steps = []int{4, 8}
	cfg.Synth.BaseSteps = 12
	cfg.Synth.FineTuneSteps = 16
	cfg.RF = tinyRF()
	rep, err := RunFrontier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1+len(cfg.Precisions)*len(cfg.Steps) {
		t.Fatalf("points = %d, want %d", len(rep.Points), 1+len(cfg.Precisions)*len(cfg.Steps))
	}
	ref, err := rep.ReferencePoint()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Precision != "fp32" || ref.Steps != cfg.RefSteps || ref.Speedup != 1 {
		t.Fatalf("reference point: %+v", ref)
	}
	for _, p := range rep.Points {
		if p.FlowsPerS <= 0 {
			t.Fatalf("point %s/%d: non-positive throughput %v", p.Precision, p.Steps, p.FlowsPerS)
		}
		if p.RFMicro < 0 || p.RFMicro > 1 || p.RFMacro < 0 || p.RFMacro > 1 {
			t.Fatalf("point %s/%d: accuracy out of range %+v", p.Precision, p.Steps, p)
		}
		if !p.Reference && p.Speedup <= 1 {
			t.Errorf("few-step point %s/%d not faster than 64-step reference (%.2fx)", p.Precision, p.Steps, p.Speedup)
		}
	}
	out := FrontierReportString(rep)
	for _, want := range []string{"precision", "(ref)", "int8"} {
		if !strings.Contains(out, want) {
			t.Errorf("frontier report missing %q:\n%s", want, out)
		}
	}
}

func TestRunFrontierValidation(t *testing.T) {
	cfg := DefaultFrontierConfig()
	cfg.GenFlows = 0
	if _, err := RunFrontier(cfg); err == nil {
		t.Fatal("zero GenFlows should fail")
	}
	cfg = DefaultFrontierConfig()
	cfg.RefSteps = cfg.Synth.TimeSteps + 1
	if _, err := RunFrontier(cfg); err == nil {
		t.Fatal("reference budget beyond schedule T should fail")
	}
}
