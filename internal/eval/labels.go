package eval

import (
	"fmt"
	"sort"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/workload"
)

// LabelSpace maps string class labels to dense integer ids at either
// the micro (11-application) or macro (4-service) level.
type LabelSpace struct {
	Names []string
	index map[string]int
	// Macro indicates the space holds macro-service labels.
	Macro bool
}

// MicroSpace builds the label space over the given micro classes.
func MicroSpace(classes []string) *LabelSpace {
	ls := &LabelSpace{Names: append([]string(nil), classes...), index: map[string]int{}}
	for i, c := range ls.Names {
		ls.index[c] = i
	}
	return ls
}

// MacroSpace builds the 4-service macro label space implied by the
// given micro classes.
func MacroSpace(classes []string) *LabelSpace {
	seen := map[string]bool{}
	var names []string
	for _, c := range classes {
		m := workload.MacroLabel(c)
		if m != "" && !seen[m] {
			seen[m] = true
			names = append(names, m)
		}
	}
	sort.Strings(names)
	ls := &LabelSpace{Names: names, index: map[string]int{}, Macro: true}
	for i, n := range names {
		ls.index[n] = i
	}
	return ls
}

// K returns the class count.
func (ls *LabelSpace) K() int { return len(ls.Names) }

// LabelOf resolves a flow's label in this space.
func (ls *LabelSpace) LabelOf(f *flow.Flow) (int, error) {
	name := f.Label
	if ls.Macro {
		name = workload.MacroLabel(f.Label)
	}
	id, ok := ls.index[name]
	if !ok {
		return 0, fmt.Errorf("eval: label %q (from %q) not in space %v", name, f.Label, ls.Names)
	}
	return id, nil
}

// Labels resolves a batch.
func (ls *LabelSpace) Labels(flows []*flow.Flow) ([]int, error) {
	out := make([]int, len(flows))
	for i, f := range flows {
		id, err := ls.LabelOf(f)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}
