// Package eval is the experiment harness: it reproduces every table
// and figure in the paper's evaluation (Table 1, Table 2, Figure 1,
// Figure 2) plus the inline §2.3 measurements, wiring the workload,
// core, gan, rf, nprint and netflow packages together and formatting
// the results the way the paper reports them.
package eval

import (
	"trafficdiff/internal/flow"
	"trafficdiff/internal/netflow"
	"trafficdiff/internal/nprint"
)

// FeatureGranularity selects the representation under test (the
// paper's central comparison: raw packet bits vs NetFlow aggregates).
type FeatureGranularity int

// Granularities.
const (
	// GranularityNprint uses raw bit-level packet features ("nprint-
	// formatted pcap").
	GranularityNprint FeatureGranularity = iota
	// GranularityNetFlow uses the ten aggregate NetFlow-like fields.
	GranularityNetFlow
)

// String names the granularity as the paper's Table 2 does.
func (g FeatureGranularity) String() string {
	if g == GranularityNprint {
		return "nprint-formatted pcap"
	}
	return "NetFlow"
}

// maskedColumns marks the nprint bit columns excluded from
// classification features — the dataset-overfitting fields the paper's
// footnote 1 removes: IP addresses and port numbers. (Flow start times
// never enter the nprint representation.)
var maskedColumns = buildMask()

func buildMask() []bool {
	mask := make([]bool, nprint.BitsPerPacket)
	span := func(off, bits int) {
		for c := off; c < off+bits; c++ {
			mask[c] = true
		}
	}
	span(nprint.IPv4Offset+96, 64) // src + dst IP (bytes 12..20)
	span(nprint.TCPOffset, 32)     // TCP src + dst port
	span(nprint.UDPOffset, 32)     // UDP src + dst port
	return mask
}

// NprintFeatures renders a flow's first `packets` packets as a flat
// masked feature vector of packets*1088 values in {-1,0,1}.
func NprintFeatures(f *flow.Flow, packets int) []float32 {
	m := nprint.FromFlow(f, packets)
	out := make([]float32, packets*nprint.BitsPerPacket)
	// Unfilled rows (flow shorter than `packets`) stay at 0 — a neutral
	// value distinct from header bits of present packets only via the
	// vacancy pattern, which is itself informative.
	for i := range out {
		out[i] = 0
	}
	for r := 0; r < m.NumRows; r++ {
		row := m.Row(r)
		base := r * nprint.BitsPerPacket
		for c, v := range row {
			if maskedColumns[c] {
				continue
			}
			out[base+c] = float32(v)
		}
	}
	return out
}

// NetFlowFeatures renders a flow's NetFlow-like aggregate features.
func NetFlowFeatures(f *flow.Flow) []float32 {
	v := netflow.FromFlow(f).FeatureVector()
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// FeatureMatrix extracts features for a flow batch at the requested
// granularity.
func FeatureMatrix(flows []*flow.Flow, g FeatureGranularity, packets int) [][]float32 {
	out := make([][]float32, len(flows))
	for i, f := range flows {
		if g == GranularityNprint {
			out[i] = NprintFeatures(f, packets)
		} else {
			out[i] = NetFlowFeatures(f)
		}
	}
	return out
}

// NetFlowVectorsToFeatures adapts GAN-generated float64 NetFlow rows
// to the classifier's float32 rows.
func NetFlowVectorsToFeatures(rows [][]float64) [][]float32 {
	out := make([][]float32, len(rows))
	for i, r := range rows {
		row := make([]float32, len(r))
		for j, v := range r {
			row[j] = float32(v)
		}
		out[i] = row
	}
	return out
}
