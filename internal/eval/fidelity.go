package eval

import (
	"fmt"
	"strings"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/heuristic"
	"trafficdiff/internal/hmm"
	"trafficdiff/internal/netfunc"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/workload"
)

// FidelityConfig parameterizes the cross-generator fidelity study: it
// compares every generator family the paper discusses (§2.1) —
// heuristics, HMM, and our diffusion pipeline — against held-out real
// traffic on distributional and structural metrics. (The GAN baseline
// is excluded here because it emits aggregate records, not packets;
// its fidelity is measured by Table 2.)
type FidelityConfig struct {
	Class      string
	TrainFlows int
	TestFlows  int
	GenFlows   int
	Synth      core.Config
	HMM        hmm.Config
	Seed       uint64
}

// DefaultFidelityConfig returns CPU-friendly settings on the paper's
// Figure 2 class.
func DefaultFidelityConfig() FidelityConfig {
	return FidelityConfig{
		Class: "amazon", TrainFlows: 16, TestFlows: 16, GenFlows: 12,
		Synth: core.DefaultConfig(), HMM: hmm.DefaultConfig(), Seed: 29,
	}
}

// FidelityRow scores one generator against held-out real traffic.
type FidelityRow struct {
	Name string
	// SizeKS and GapKS are two-sample Kolmogorov-Smirnov statistics
	// for packet sizes and inter-arrival gaps (lower = closer).
	SizeKS, GapKS float64
	// HeaderCoverage is the fraction of the 1088 nprint features the
	// generator emits at all.
	HeaderCoverage float64
	// TCPConformance is the stateful-checker conformance rate (1 =
	// fully replayable handshake ordering). NaN-free: generators
	// without TCP packets report 1.
	TCPConformance float64
}

// FidelityResult is the study output, one row per generator plus the
// real-vs-real control.
type FidelityResult struct {
	Class string
	Rows  []FidelityRow
}

// RunFidelity executes the study.
func RunFidelity(cfg FidelityConfig) (*FidelityResult, error) {
	if cfg.TrainFlows <= 0 || cfg.TestFlows <= 0 || cfg.GenFlows <= 0 {
		return nil, fmt.Errorf("eval: non-positive fidelity sizes")
	}
	ds, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, FlowsPerClass: cfg.TrainFlows + cfg.TestFlows,
		Only: []string{cfg.Class}, MaxPacketsPerFlow: cfg.Synth.Rows,
	})
	if err != nil {
		return nil, err
	}
	frac := float64(cfg.TrainFlows) / float64(cfg.TrainFlows+cfg.TestFlows)
	train, test := ds.Split(frac, cfg.Seed+1)

	res := &FidelityResult{Class: cfg.Class}
	testSizes, testGaps := sizeGapSamples(test.Flows)

	score := func(name string, flows []*flow.Flow) {
		sizes, gaps := sizeGapSamples(flows)
		res.Rows = append(res.Rows, FidelityRow{
			Name:           name,
			SizeKS:         stats.KSStatistic(testSizes, sizes),
			GapKS:          stats.KSStatistic(testGaps, gaps),
			HeaderCoverage: 1,
			TCPConformance: tcpConformance(flows),
		})
	}

	// Control: train-vs-test real traffic sets the noise floor.
	score("real (control)", train.Flows)

	// Heuristic baseline.
	hfit, err := heuristic.Fit(train.Flows)
	if err != nil {
		return nil, err
	}
	score("heuristic", hfit.Generate(cfg.GenFlows, cfg.Seed+2))

	// HMM baseline: emits only (size, gap) pairs — no headers at all.
	var seqs [][]hmm.Observation
	for _, f := range train.Flows {
		seqs = append(seqs, hmm.FromFlow(f))
	}
	hcfg := cfg.HMM
	hcfg.Seed = cfg.Seed + 3
	model, _, err := hmm.Train(seqs, hcfg)
	if err != nil {
		return nil, err
	}
	var hmmSizes, hmmGaps []float64
	r := stats.NewRNG(cfg.Seed + 4)
	for i := 0; i < cfg.GenFlows; i++ {
		for _, o := range model.Sample(24, r) {
			hmmSizes = append(hmmSizes, o.SizeBytes)
			hmmGaps = append(hmmGaps, o.GapMs)
		}
	}
	res.Rows = append(res.Rows, FidelityRow{
		Name:           "hmm",
		SizeKS:         stats.KSStatistic(testSizes, hmmSizes),
		GapKS:          stats.KSStatistic(testGaps, hmmGaps),
		HeaderCoverage: 0, // sizes and gaps only: zero header features
		TCPConformance: 1, // vacuously: no packets to violate
	})

	// Our diffusion pipeline.
	synth, err := core.New(cfg.Synth, []string{cfg.Class})
	if err != nil {
		return nil, err
	}
	if _, err := synth.FineTune(map[string][]*flow.Flow{cfg.Class: train.Flows}); err != nil {
		return nil, err
	}
	gen, err := synth.Generate(cfg.Class, cfg.GenFlows)
	if err != nil {
		return nil, err
	}
	score("diffusion (ours)", gen.Flows)
	return res, nil
}

// sizeGapSamples flattens flows into size and gap samples.
func sizeGapSamples(flows []*flow.Flow) (sizes, gaps []float64) {
	for _, f := range flows {
		for _, o := range hmm.FromFlow(f) {
			sizes = append(sizes, o.SizeBytes)
			if o.GapMs > 0 {
				gaps = append(gaps, o.GapMs)
			}
		}
	}
	return sizes, gaps
}

// tcpConformance returns the stateful checker's conformance rate.
func tcpConformance(flows []*flow.Flow) float64 {
	c := netfunc.NewTCPStateChecker()
	total := 0
	for _, f := range flows {
		for _, p := range f.Packets {
			if p.TCP != nil {
				total++
			}
			c.Process(p)
		}
	}
	if total == 0 {
		return 1
	}
	return float64(total-c.Violations()) / float64(total)
}

// FidelityReport renders the study.
func FidelityReport(r *FidelityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fidelity vs held-out real %s traffic (lower KS = closer)\n", r.Class)
	fmt.Fprintf(&b, "%-18s %8s %8s %10s %12s\n", "Generator", "size-KS", "gap-KS", "hdr-cover", "tcp-conform")
	fmt.Fprintln(&b, strings.Repeat("-", 62))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %8.3f %8.3f %10.3f %12.3f\n",
			row.Name, row.SizeKS, row.GapKS, row.HeaderCoverage, row.TCPConformance)
	}
	return b.String()
}
