package eval

import (
	"fmt"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/gan"
	"trafficdiff/internal/netflow"
	"trafficdiff/internal/rf"
	"trafficdiff/internal/workload"
)

// Table2Config parameterizes the Table 2 reproduction (RF accuracy
// across training/testing scenarios).
type Table2Config struct {
	// Classes under study (default: all 11 micro applications).
	Classes []string
	// TrainFlowsPerClass is the per-class fine-tuning subset size
	// (paper §3.2 uses 100 to bound LoRA overhead).
	TrainFlowsPerClass int
	// TestFlowsPerClass sizes the held-out real test set.
	TestFlowsPerClass int
	// SynthPerClass sizes the generated dataset (used as test set in
	// Real/Synthetic and as training set in Synthetic/Real).
	SynthPerClass int
	// PacketsPerFlow bounds the nprint feature rows (paper: first 1024
	// packets; experiments default far lower for CPU budgets).
	PacketsPerFlow int

	Synth core.Config
	GAN   gan.Config
	RF    rf.Config
	Seed  uint64
}

// DefaultTable2Config returns CPU-budget-friendly settings with the
// paper's structure intact.
func DefaultTable2Config() Table2Config {
	synth := core.DefaultConfig()
	return Table2Config{
		Classes:            workload.ClassNames(),
		TrainFlowsPerClass: 24,
		TestFlowsPerClass:  8,
		SynthPerClass:      8,
		PacketsPerFlow:     12,
		Synth:              synth,
		GAN:                gan.DefaultConfig(),
		RF:                 rf.DefaultConfig(),
		Seed:               7,
	}
}

// Cell is one Table 2 accuracy pair.
type Cell struct {
	Macro, Micro float64
}

// Table2Result holds the six scenario rows of the paper's Table 2.
type Table2Result struct {
	Classes []string

	RealRealNprint  Cell // Real/Real, nprint-formatted pcap
	RealRealNetFlow Cell // Real/Real, NetFlow
	RealSynthOurs   Cell // Real/Synthetic (Ours), nprint
	RealSynthGAN    Cell // Real/Synthetic (GAN), NetFlow
	SynthRealOurs   Cell // Synthetic/Real (Ours), nprint
	SynthRealGAN    Cell // Synthetic/Real (GAN), NetFlow

	// SynthRealOursRecall is the per-class (micro) recall of the
	// Synthetic/Real (Ours) scenario, aligned with Classes — the
	// per-class breakdown behind the paper's distribution-shift
	// discussion.
	SynthRealOursRecall []float64

	// Diagnostics.
	TrainFlows, TestFlows, SynthFlows int
}

// RunTable2 executes the full case study.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	if len(cfg.Classes) < 2 {
		return nil, fmt.Errorf("eval: table2 needs >= 2 classes")
	}
	total := cfg.TrainFlowsPerClass + cfg.TestFlowsPerClass
	if cfg.TrainFlowsPerClass <= 0 || cfg.TestFlowsPerClass <= 0 || cfg.SynthPerClass <= 0 {
		return nil, fmt.Errorf("eval: non-positive dataset sizes")
	}
	ds, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, FlowsPerClass: total, Only: cfg.Classes,
		MaxPacketsPerFlow: cfg.Synth.Rows,
	})
	if err != nil {
		return nil, err
	}
	trainFrac := float64(cfg.TrainFlowsPerClass) / float64(total)
	train, test := ds.Split(trainFrac, cfg.Seed+1)

	micro := MicroSpace(cfg.Classes)
	macro := MacroSpace(cfg.Classes)

	res := &Table2Result{
		Classes:    cfg.Classes,
		TrainFlows: len(train.Flows),
		TestFlows:  len(test.Flows),
	}

	// --- Real/Real at both granularities. ---
	res.RealRealNprint, err = evalPair(train.Flows, test.Flows, GranularityNprint, cfg, micro, macro)
	if err != nil {
		return nil, fmt.Errorf("real/real nprint: %w", err)
	}
	res.RealRealNetFlow, err = evalPair(train.Flows, test.Flows, GranularityNetFlow, cfg, micro, macro)
	if err != nil {
		return nil, fmt.Errorf("real/real netflow: %w", err)
	}

	// --- Our diffusion pipeline. ---
	synth, err := core.New(cfg.Synth, cfg.Classes)
	if err != nil {
		return nil, err
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range train.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	if _, err := synth.FineTune(byClass); err != nil {
		return nil, fmt.Errorf("fine-tune: %w", err)
	}
	synthFlows, err := synth.GenerateBalanced(cfg.SynthPerClass)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	res.SynthFlows = len(synthFlows)

	res.RealSynthOurs, err = evalPair(train.Flows, synthFlows, GranularityNprint, cfg, micro, macro)
	if err != nil {
		return nil, fmt.Errorf("real/synth ours: %w", err)
	}
	res.SynthRealOurs, err = evalPair(synthFlows, test.Flows, GranularityNprint, cfg, micro, macro)
	if err != nil {
		return nil, fmt.Errorf("synth/real ours: %w", err)
	}
	res.SynthRealOursRecall, err = perClassRecall(synthFlows, test.Flows, cfg, micro)
	if err != nil {
		return nil, fmt.Errorf("synth/real ours recall: %w", err)
	}

	// --- GAN baseline on NetFlow features. ---
	ganSynthFlows, ganLabels, err := trainGANAndGenerate(train.Flows, cfg, micro)
	if err != nil {
		return nil, fmt.Errorf("gan: %w", err)
	}
	res.RealSynthGAN, err = evalPairGAN(train.Flows, ganSynthFlows, ganLabels, false, cfg, micro, macro)
	if err != nil {
		return nil, fmt.Errorf("real/synth gan: %w", err)
	}
	res.SynthRealGAN, err = evalPairGAN(test.Flows, ganSynthFlows, ganLabels, true, cfg, micro, macro)
	if err != nil {
		return nil, fmt.Errorf("synth/real gan: %w", err)
	}
	return res, nil
}

// evalPair trains an RF on trainFlows and tests on testFlows at the
// given granularity, for both label levels.
func evalPair(trainFlows, testFlows []*flow.Flow, g FeatureGranularity, cfg Table2Config, micro, macro *LabelSpace) (Cell, error) {
	var cell Cell
	trainX := FeatureMatrix(trainFlows, g, cfg.PacketsPerFlow)
	testX := FeatureMatrix(testFlows, g, cfg.PacketsPerFlow)
	for _, level := range []*LabelSpace{macro, micro} {
		trainY, err := level.Labels(trainFlows)
		if err != nil {
			return cell, err
		}
		testY, err := level.Labels(testFlows)
		if err != nil {
			return cell, err
		}
		rfCfg := cfg.RF
		rfCfg.Seed = cfg.Seed + uint64(level.K())
		forest, err := rf.Train(trainX, trainY, level.K(), rfCfg)
		if err != nil {
			return cell, err
		}
		acc := rf.Accuracy(forest.PredictBatch(testX), testY)
		if level.Macro {
			cell.Macro = acc
		} else {
			cell.Micro = acc
		}
	}
	return cell, nil
}

// trainGANAndGenerate fits the NetShare-style GAN on the real training
// flows' complete NetFlow records — including the high-entropy
// identifier fields NetShare must model (IPs, ports, start times) —
// and draws a synthetic dataset. Classification features are then
// sliced out of the generated rows, exactly as the evaluation does for
// real records (paper footnote 1). Returned labels are micro-level ids
// (the GAN emits them as a feature).
func trainGANAndGenerate(trainFlows []*flow.Flow, cfg Table2Config, micro *LabelSpace) ([][]float32, []int, error) {
	var feats [][]float64
	var labels []int
	for _, f := range trainFlows {
		rec := netflow.FromFlow(f)
		feats = append(feats, rec.FullVector())
		id, err := micro.LabelOf(f)
		if err != nil {
			return nil, nil, err
		}
		labels = append(labels, id)
	}
	gcfg := cfg.GAN
	gcfg.Seed = cfg.Seed + 99
	model, err := gan.Train(feats, labels, micro.K(), gcfg)
	if err != nil {
		return nil, nil, err
	}
	n := cfg.SynthPerClass * micro.K()
	genFull, genL := model.Generate(n, cfg.Seed+100)
	genF := make([][]float64, len(genFull))
	for i, row := range genFull {
		genF[i] = netflow.ClassifierFeaturesFromFull(row)
	}
	return NetFlowVectorsToFeatures(genF), genL, nil
}

// perClassRecall trains a micro-level RF on trainFlows and returns
// the per-class recall on testFlows.
func perClassRecall(trainFlows, testFlows []*flow.Flow, cfg Table2Config, micro *LabelSpace) ([]float64, error) {
	trainX := FeatureMatrix(trainFlows, GranularityNprint, cfg.PacketsPerFlow)
	testX := FeatureMatrix(testFlows, GranularityNprint, cfg.PacketsPerFlow)
	trainY, err := micro.Labels(trainFlows)
	if err != nil {
		return nil, err
	}
	testY, err := micro.Labels(testFlows)
	if err != nil {
		return nil, err
	}
	rfCfg := cfg.RF
	rfCfg.Seed = cfg.Seed + 61
	forest, err := rf.Train(trainX, trainY, micro.K(), rfCfg)
	if err != nil {
		return nil, err
	}
	cm, err := rf.NewConfusionMatrix(forest.PredictBatch(testX), testY, micro.K())
	if err != nil {
		return nil, err
	}
	return cm.PerClassRecall(), nil
}

// evalPairGAN evaluates GAN scenarios. synthAsTrain selects
// Synthetic/Real (train on GAN rows, test on real) vs Real/Synthetic.
func evalPairGAN(realFlows []*flow.Flow, synthX [][]float32, synthMicro []int, synthAsTrain bool, cfg Table2Config, micro, macro *LabelSpace) (Cell, error) {
	var cell Cell
	realX := FeatureMatrix(realFlows, GranularityNetFlow, cfg.PacketsPerFlow)
	for _, level := range []*LabelSpace{macro, micro} {
		realY, err := level.Labels(realFlows)
		if err != nil {
			return cell, err
		}
		synthY := make([]int, len(synthMicro))
		for i, m := range synthMicro {
			if level.Macro {
				id, ok := level.index[workload.MacroLabel(micro.Names[m])]
				if !ok {
					return cell, fmt.Errorf("eval: macro label missing for %q", micro.Names[m])
				}
				synthY[i] = id
			} else {
				synthY[i] = m
			}
		}
		trainX, trainY := realX, realY
		testX, testY := synthX, synthY
		if synthAsTrain {
			trainX, trainY, testX, testY = synthX, synthY, realX, realY
		}
		rfCfg := cfg.RF
		rfCfg.Seed = cfg.Seed + 31 + uint64(level.K())
		forest, err := rf.Train(trainX, trainY, level.K(), rfCfg)
		if err != nil {
			return cell, err
		}
		acc := rf.Accuracy(forest.PredictBatch(testX), testY)
		if level.Macro {
			cell.Macro = acc
		} else {
			cell.Micro = acc
		}
	}
	return cell, nil
}
