package eval

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/gan"
	"trafficdiff/internal/netflow"
	"trafficdiff/internal/workload"
)

// SpeedConfig parameterizes the §4 "generative speed" measurement:
// how fast each generator produces traffic, and what DDIM step
// reduction buys over full DDPM sampling.
type SpeedConfig struct {
	Classes    []string
	TrainFlows int
	// GenFlows is the number of flows timed per configuration.
	GenFlows int
	// DDIMSteps are the accelerated-sampler step counts to sweep; 0
	// means full DDPM.
	DDIMSteps []int
	// Int8Steps are DDIM step counts swept again on the int8 quantized
	// path — the fidelity-vs-speed frontier's throughput side, inside
	// the same table as the fp32 rows.
	Int8Steps []int
	Synth     core.Config
	GAN       gan.Config
	Seed      uint64
}

// DefaultSpeedConfig returns CPU-friendly settings.
func DefaultSpeedConfig() SpeedConfig {
	return SpeedConfig{
		Classes: []string{"amazon", "teams"}, TrainFlows: 10, GenFlows: 6,
		DDIMSteps: []int{0, 30, 10, 5},
		Int8Steps: []int{16, 8, 4},
		Synth:     core.DefaultConfig(), GAN: gan.DefaultConfig(), Seed: 17,
	}
}

// SpeedRow is one timed configuration.
type SpeedRow struct {
	Name       string
	Steps      int // model evaluations per flow batch (0 for GAN)
	FlowsPerS  float64
	PacketsPer float64 // packets per second (0 for GAN's record output)
	RecordsPer float64 // records per second (GAN only)
}

// SpeedResult is the sweep output.
type SpeedResult struct {
	Rows []SpeedRow
}

// RunSpeed measures generation throughput for the diffusion pipeline
// across sampler budgets and for the GAN baseline.
func RunSpeed(cfg SpeedConfig) (*SpeedResult, error) {
	if cfg.GenFlows <= 0 || cfg.TrainFlows <= 0 {
		return nil, fmt.Errorf("eval: non-positive speed sizes")
	}
	ds, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, FlowsPerClass: cfg.TrainFlows, Only: cfg.Classes,
		MaxPacketsPerFlow: cfg.Synth.Rows,
	})
	if err != nil {
		return nil, err
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	synthCfg := cfg.Synth
	synth, err := core.New(synthCfg, cfg.Classes)
	if err != nil {
		return nil, err
	}
	if _, err := synth.FineTune(byClass); err != nil {
		return nil, err
	}

	res := &SpeedResult{}
	timeRow := func(steps int, precision string) error {
		// Rebuild with the same weights is unnecessary: DDIMSteps and
		// precision only affect sampling, so adjust through a fresh
		// synthesizer sharing the trained one's state via Save/Load.
		timed, err := withSamplerSteps(synth, synthCfg, steps)
		if err != nil {
			return err
		}
		if err := timed.SetPrecision(precision); err != nil {
			return err
		}
		start := time.Now()
		out, err := timed.Generate(cfg.Classes[0], cfg.GenFlows)
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		pkts := 0
		for _, f := range out.Flows {
			pkts += len(f.Packets)
		}
		name := "ddpm (full)"
		evalSteps := synthCfg.TimeSteps
		if steps > 0 {
			name = fmt.Sprintf("ddim-%d", steps)
			evalSteps = steps
		}
		if precision == "int8" {
			name = "int8 " + name
		}
		res.Rows = append(res.Rows, SpeedRow{
			Name: name, Steps: evalSteps,
			FlowsPerS:  float64(len(out.Flows)) / elapsed,
			PacketsPer: float64(pkts) / elapsed,
		})
		return nil
	}
	for _, steps := range cfg.DDIMSteps {
		if err := timeRow(steps, "fp32"); err != nil {
			return nil, err
		}
	}
	for _, steps := range cfg.Int8Steps {
		if err := timeRow(steps, "int8"); err != nil {
			return nil, err
		}
	}

	// GAN baseline: one-shot record generation.
	micro := MicroSpace(cfg.Classes)
	var feats [][]float64
	var labels []int
	for _, f := range ds.Flows {
		feats = append(feats, netflow.FromFlow(f).FeatureVector())
		id, err := micro.LabelOf(f)
		if err != nil {
			return nil, err
		}
		labels = append(labels, id)
	}
	gcfg := cfg.GAN
	gcfg.Seed = cfg.Seed + 1
	model, err := gan.Train(feats, labels, micro.K(), gcfg)
	if err != nil {
		return nil, err
	}
	const ganBatch = 2000
	start := time.Now()
	genF, _ := model.Generate(ganBatch, cfg.Seed+2)
	elapsed := time.Since(start).Seconds()
	res.Rows = append(res.Rows, SpeedRow{
		Name: "gan (netflow records)", Steps: 0,
		RecordsPer: float64(len(genF)) / elapsed,
	})
	return res, nil
}

// withSamplerSteps clones a trained synthesizer with a different
// DDIMSteps setting through the Save/Load round trip.
func withSamplerSteps(s *core.Synthesizer, cfg core.Config, steps int) (*core.Synthesizer, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		return nil, err
	}
	loaded.SetDDIMSteps(steps)
	return loaded, nil
}

// SpeedReport renders the sweep like the paper's discussion: flows/s
// falls linearly with sampler steps; the GAN's one-shot generation is
// orders of magnitude faster but emits only aggregate records.
func SpeedReport(r *SpeedResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %12s %12s %12s\n", "Generator", "steps", "flows/s", "packets/s", "records/s")
	fmt.Fprintln(&b, strings.Repeat("-", 70))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %8d %12.2f %12.1f %12.1f\n",
			row.Name, row.Steps, row.FlowsPerS, row.PacketsPer, row.RecordsPer)
	}
	return b.String()
}
