package eval

import (
	"fmt"
	"sort"
	"strings"

	"trafficdiff/internal/workload"
)

// Table1Report renders the dataset composition the way the paper's
// Table 1 does, for a generated dataset.
func Table1Report(ds *workload.Dataset) string {
	counts := ds.ClassCounts()
	type row struct {
		macro workload.MacroService
		name  string
		n     int
	}
	var rows []row
	for _, p := range workload.Catalog() {
		if n, ok := counts[p.Name]; ok {
			rows = append(rows, row{p.Macro, p.Name, n})
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-12s %8s\n", "Macro Service", "Application", "Flows")
	fmt.Fprintln(&b, strings.Repeat("-", 44))
	macroTotals := map[workload.MacroService]int{}
	total := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-12s %8d\n", r.macro, r.name, r.n)
		macroTotals[r.macro] += r.n
		total += r.n
	}
	fmt.Fprintln(&b, strings.Repeat("-", 44))
	var macros []string
	for m := range macroTotals {
		macros = append(macros, string(m))
	}
	sort.Strings(macros)
	for _, m := range macros {
		fmt.Fprintf(&b, "%-22s %-12s %8d\n", m, "(total)", macroTotals[workload.MacroService(m)])
	}
	fmt.Fprintf(&b, "%-22s %-12s %8d\n", "all", "", total)
	return b.String()
}

// Table2Report renders the six-scenario accuracy table in the paper's
// Table 2 layout.
func Table2Report(r *Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-24s %8s %8s\n", "Training/Testing Data", "Granularity", "Macro", "Micro")
	fmt.Fprintln(&b, strings.Repeat("-", 72))
	row := func(name, gran string, c Cell) {
		fmt.Fprintf(&b, "%-28s %-24s %8.2f %8.2f\n", name, gran, c.Macro, c.Micro)
	}
	row("Real/Real", GranularityNprint.String(), r.RealRealNprint)
	row("Real/Real", GranularityNetFlow.String(), r.RealRealNetFlow)
	row("Real/Synthetic (Ours)", GranularityNprint.String(), r.RealSynthOurs)
	row("Real/Synthetic (GAN)", GranularityNetFlow.String(), r.RealSynthGAN)
	row("Synthetic/Real (Ours)", GranularityNprint.String(), r.SynthRealOurs)
	row("Synthetic/Real (GAN)", GranularityNetFlow.String(), r.SynthRealGAN)
	fmt.Fprintf(&b, "\n(train=%d real flows, test=%d real flows, synth=%d flows)\n",
		r.TrainFlows, r.TestFlows, r.SynthFlows)
	if len(r.SynthRealOursRecall) == len(r.Classes) {
		fmt.Fprintf(&b, "\nper-class recall, Synthetic/Real (Ours) micro:\n")
		for i, c := range r.Classes {
			fmt.Fprintf(&b, "  %-12s %.2f\n", c, r.SynthRealOursRecall[i])
		}
	}
	return b.String()
}

// Fig1Report renders the per-class proportion comparison.
func Fig1Report(r *Fig1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", "Class", "Real %", "GAN %", "Ours %")
	fmt.Fprintln(&b, strings.Repeat("-", 46))
	for i, c := range r.Classes {
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f %10.2f\n", c, 100*r.Real[i], 100*r.GAN[i], 100*r.Ours[i])
	}
	fmt.Fprintln(&b, strings.Repeat("-", 46))
	fmt.Fprintf(&b, "imbalance ratio (max/min): real %.2f, gan %.2f, ours %.2f\n",
		r.ImbalanceReal, r.ImbalanceGAN, r.ImbalanceOurs)
	return b.String()
}

// Fig2Report renders the compliance audit next to the image metadata.
func Fig2Report(r *Fig2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "synthetic %s flow: %d packets, %d-byte PNG rendered\n", r.Class, r.Rows, len(r.PNG))
	fmt.Fprintf(&b, "protocol compliance: raw %.3f -> post-projection %.3f\n",
		r.RawProtocolCompliance, r.PostProtocolCompliance)
	var names []string
	for n := range r.SectionActive {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  section %-5s active in %5.1f%% of packets\n", n, 100*r.SectionActive[n])
	}
	return b.String()
}

// GranularityReport renders the §2.3 comparison.
func GranularityReport(r *GranularityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s\n", "Granularity (Real/Real)", "Macro", "Micro")
	fmt.Fprintln(&b, strings.Repeat("-", 44))
	fmt.Fprintf(&b, "%-24s %8.2f %8.2f\n", "raw packet bits", r.NprintMacro, r.NprintMicro)
	fmt.Fprintf(&b, "%-24s %8.2f %8.2f\n", "NetFlow features", r.NetFlowMacro, r.NetFlowMicro)
	return b.String()
}

// PerClassGANReport renders the supplemental experiment.
func PerClassGANReport(r *PerClassGANResult) string {
	return fmt.Sprintf("per-class GANs, Synthetic/Real: macro %.2f, micro %.2f\n",
		r.SynthRealMacro, r.SynthRealMicro)
}
