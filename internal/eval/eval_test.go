package eval

import (
	"strings"
	"testing"

	"trafficdiff/internal/core"
	"trafficdiff/internal/gan"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/rf"
	"trafficdiff/internal/workload"
)

// tinySynth keeps pipeline training fast in tests.
func tinySynth() core.Config {
	cfg := core.DefaultConfig()
	cfg.Rows = 16
	cfg.DownH = 2
	cfg.DownW = 16
	cfg.Hidden = 48
	cfg.TimeSteps = 30
	cfg.BaseSteps = 25
	cfg.FineTuneSteps = 40
	cfg.Batch = 8
	cfg.DDIMSteps = 6
	return cfg
}

func tinyGAN() gan.Config {
	cfg := gan.DefaultConfig()
	cfg.Steps = 120
	return cfg
}

func tinyRF() rf.Config {
	cfg := rf.DefaultConfig()
	cfg.Trees = 10
	return cfg
}

func TestFeatureShapes(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Seed: 1, FlowsPerClass: 2, Only: []string{"netflix"}, MaxPacketsPerFlow: 10})
	if err != nil {
		t.Fatal(err)
	}
	f := ds.Flows[0]
	np := NprintFeatures(f, 6)
	if len(np) != 6*nprint.BitsPerPacket {
		t.Fatalf("nprint features len %d", len(np))
	}
	nf := NetFlowFeatures(f)
	if len(nf) != 8 {
		t.Fatalf("netflow features len %d", len(nf))
	}
}

func TestMaskedColumnsExcluded(t *testing.T) {
	ds, _ := workload.Generate(workload.Config{Seed: 2, FlowsPerClass: 1, Only: []string{"netflix"}, MaxPacketsPerFlow: 8})
	f := ds.Flows[0]
	v := NprintFeatures(f, 4)
	// Source IP bits (IPv4 bytes 12-16 = bit cols 96..128) must be 0
	// for every packet row.
	for r := 0; r < 4; r++ {
		for c := 96; c < 160; c++ {
			if v[r*nprint.BitsPerPacket+c] != 0 {
				t.Fatalf("IP address bit leaked into features at row %d col %d", r, c)
			}
		}
		for c := nprint.TCPOffset; c < nprint.TCPOffset+32; c++ {
			if v[r*nprint.BitsPerPacket+c] != 0 {
				t.Fatalf("port bit leaked at row %d col %d", r, c)
			}
		}
	}
	// But TTL bits (byte 8 = cols 64..72) must be present in row 0.
	nonzero := false
	for c := 64; c < 72; c++ {
		if v[c] != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("TTL bits missing from features")
	}
}

func TestLabelSpaces(t *testing.T) {
	classes := []string{"netflix", "teams", "other"}
	micro := MicroSpace(classes)
	if micro.K() != 3 {
		t.Fatalf("micro K = %d", micro.K())
	}
	macro := MacroSpace(classes)
	if macro.K() != 3 { // video_streaming, video_conferencing, iot_device
		t.Fatalf("macro K = %d (%v)", macro.K(), macro.Names)
	}
	ds, _ := workload.Generate(workload.Config{Seed: 3, FlowsPerClass: 1, Only: classes, MaxPacketsPerFlow: 8})
	mi, err := micro.Labels(ds.Flows)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := macro.Labels(ds.Flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(mi) != 3 || len(ma) != 3 {
		t.Fatal("label lengths wrong")
	}
	// Unknown label errors.
	bad := ds.Flows[0]
	bad.Label = "mystery"
	if _, err := micro.LabelOf(bad); err == nil {
		t.Fatal("unknown label should fail")
	}
}

func TestRunTable2SmallShape(t *testing.T) {
	cfg := DefaultTable2Config()
	cfg.Classes = []string{"amazon", "teams", "facebook", "other"}
	cfg.TrainFlowsPerClass = 10
	cfg.TestFlowsPerClass = 4
	cfg.SynthPerClass = 4
	cfg.PacketsPerFlow = 8
	cfg.Synth = tinySynth()
	cfg.GAN = tinyGAN()
	cfg.RF = tinyRF()

	res, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Structural checks: accuracies in [0,1], Real/Real nprint is the
	// best micro score (the paper's headline ordering).
	cells := []Cell{
		res.RealRealNprint, res.RealRealNetFlow,
		res.RealSynthOurs, res.RealSynthGAN,
		res.SynthRealOurs, res.SynthRealGAN,
	}
	for i, c := range cells {
		if c.Macro < 0 || c.Macro > 1 || c.Micro < 0 || c.Micro > 1 {
			t.Fatalf("cell %d out of range: %+v", i, c)
		}
	}
	if res.RealRealNprint.Micro < res.RealSynthGAN.Micro {
		t.Errorf("Real/Real nprint (%.2f) should beat Real/Synth GAN (%.2f)",
			res.RealRealNprint.Micro, res.RealSynthGAN.Micro)
	}
	if res.RealRealNprint.Micro < 0.7 {
		t.Errorf("Real/Real nprint micro = %.2f, expected high on separable workload", res.RealRealNprint.Micro)
	}
	// Ours beats the GAN on the synthetic-data scenarios (the paper's
	// central claim, Table 2).
	if res.RealSynthOurs.Macro <= res.RealSynthGAN.Macro {
		t.Errorf("Real/Synth: ours macro %.2f should beat GAN %.2f",
			res.RealSynthOurs.Macro, res.RealSynthGAN.Macro)
	}
	report := Table2Report(res)
	if !strings.Contains(report, "Real/Synthetic (Ours)") {
		t.Error("report missing scenario row")
	}
}

func TestRunTable2Validation(t *testing.T) {
	cfg := DefaultTable2Config()
	cfg.Classes = []string{"amazon"}
	if _, err := RunTable2(cfg); err == nil {
		t.Error("single class should fail")
	}
	cfg = DefaultTable2Config()
	cfg.TrainFlowsPerClass = 0
	if _, err := RunTable2(cfg); err == nil {
		t.Error("zero train flows should fail")
	}
}

func TestRunFig1TwoClass(t *testing.T) {
	cfg := DefaultFig1Config()
	cfg.Classes = []string{"netflix", "youtube"} // Figure 1(b)
	cfg.Scale = 0.004
	cfg.SynthTotal = 12
	cfg.Synth = tinySynth()
	cfg.GAN = tinyGAN()
	res, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	for name, p := range map[string][]float64{"real": res.Real, "gan": res.GAN, "ours": res.Ours} {
		if len(p) != 2 {
			t.Fatalf("%s proportions len %d", name, len(p))
		}
		if s := sum(p); s < 0.99 || s > 1.01 {
			t.Fatalf("%s proportions sum %v", name, s)
		}
	}
	// Ours is perfectly balanced by construction.
	if res.ImbalanceOurs != 1 {
		t.Errorf("ours imbalance = %v, want 1", res.ImbalanceOurs)
	}
	// Real reflects Table 1's netflix > youtube.
	if res.Real[0] <= res.Real[1] {
		t.Errorf("real proportions lost Table 1 imbalance: %v", res.Real)
	}
	// Ours is at least as balanced as the GAN output.
	if res.ImbalanceOurs > res.ImbalanceGAN+1e-9 {
		t.Errorf("ours (%v) less balanced than GAN (%v)", res.ImbalanceOurs, res.ImbalanceGAN)
	}
	report := Fig1Report(res)
	if !strings.Contains(report, "imbalance ratio") {
		t.Error("fig1 report missing imbalance line")
	}
}

func TestRunFig2Amazon(t *testing.T) {
	cfg := DefaultFig2Config()
	cfg.TrainFlows = 6
	cfg.Synth = tinySynth()
	res, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PNG) == 0 {
		t.Fatal("no PNG rendered")
	}
	if res.PostProtocolCompliance != 1 {
		t.Errorf("post-projection compliance = %v", res.PostProtocolCompliance)
	}
	// The Figure 2 signature: TCP active everywhere, UDP/ICMP nowhere.
	if res.SectionActive["tcp"] != 1 {
		t.Errorf("tcp activity = %v", res.SectionActive["tcp"])
	}
	if res.SectionActive["udp"] != 0 || res.SectionActive["icmp"] != 0 {
		t.Errorf("udp/icmp active: %v", res.SectionActive)
	}
	if !strings.Contains(Fig2Report(res), "protocol compliance") {
		t.Error("fig2 report malformed")
	}
}

func TestRunFig2UnknownClass(t *testing.T) {
	cfg := DefaultFig2Config()
	cfg.Class = "mystery"
	if _, err := RunFig2(cfg); err == nil {
		t.Fatal("unknown class should fail")
	}
}

func TestRunGranularity(t *testing.T) {
	cfg := DefaultGranularityConfig()
	cfg.Classes = []string{"netflix", "amazon", "teams", "zoom", "facebook", "other"}
	cfg.TrainFlowsPerClass = 12
	cfg.TestFlowsPerClass = 5
	cfg.PacketsPerFlow = 8
	cfg.MaxPacketsPerFlow = 16
	cfg.RF = tinyRF()
	res, err := RunGranularity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §2.3 point: raw packet bits beat NetFlow at the
	// micro level (94% vs 85%).
	if res.NprintMicro <= res.NetFlowMicro {
		t.Errorf("nprint micro (%.2f) should beat netflow micro (%.2f)",
			res.NprintMicro, res.NetFlowMicro)
	}
	if !strings.Contains(GranularityReport(res), "raw packet bits") {
		t.Error("granularity report malformed")
	}
}

func TestRunPerClassGAN(t *testing.T) {
	cfg := DefaultPerClassGANConfig()
	// All-TCP classes: protocol one-hots carry no signal, so micro
	// accuracy must come from the blurry aggregate features.
	cfg.Classes = []string{"netflix", "amazon", "twitch", "facebook"}
	cfg.TrainFlowsPerClass = 12
	cfg.TestFlowsPerClass = 5
	cfg.SynthPerClass = 5
	cfg.GAN = tinyGAN()
	cfg.RF = tinyRF()
	cfg.MaxPacketsPerFlow = 16
	res, err := RunPerClassGAN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SynthRealMicro < 0 || res.SynthRealMicro > 1 {
		t.Fatalf("micro accuracy out of range: %v", res.SynthRealMicro)
	}
	// The paper's finding: per-class GANs remain far from Real/Real
	// quality (~0.20 micro). Assert the weaker property that micro
	// accuracy stays well below 0.9.
	if res.SynthRealMicro > 0.9 {
		t.Errorf("per-class GAN suspiciously good: %v", res.SynthRealMicro)
	}
	if !strings.Contains(PerClassGANReport(res), "per-class GANs") {
		t.Error("report malformed")
	}
}

func TestTable1Report(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Seed: 4, Scale: 0.01, MaxPacketsPerFlow: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep := Table1Report(ds)
	for _, want := range []string{"netflix", "video_streaming", "iot_device", "(total)"} {
		if !strings.Contains(rep, want) {
			t.Errorf("table1 report missing %q", want)
		}
	}
}

func TestGranularityStrings(t *testing.T) {
	if GranularityNprint.String() != "nprint-formatted pcap" || GranularityNetFlow.String() != "NetFlow" {
		t.Fatal("granularity names wrong")
	}
}
