package eval

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/rf"
	"trafficdiff/internal/workload"
)

// This file is the fidelity-vs-speed frontier behind the quantized
// inference path: every (precision, DDIM steps) configuration is
// measured for both throughput (flows/s) and fidelity (Table 2's
// Synthetic/Real RF accuracy), against an fp32 full-budget reference.
// The int8 few-step path ships gated — GateFrontier is the pure
// pass/fail check benchjson -suite quant enforces in CI, so a
// quantization regression that silently degrades trace realism fails
// the build rather than the downstream task.

// FrontierConfig parameterizes the sweep.
type FrontierConfig struct {
	Classes []string
	// TrainFlows and TestFlows size the per-class real datasets; the
	// test split is what generated flows are judged against.
	TrainFlows int
	TestFlows  int
	// GenFlows is the per-class generated dataset size per point — both
	// the timed work and the RF training set.
	GenFlows int
	// RefSteps is the reference DDIM budget (the paper's full-fidelity
	// configuration; 64 in the shipped suite).
	RefSteps int
	// Steps are the few-step budgets swept at each precision.
	Steps []int
	// Precisions to sweep ("fp32", "int8").
	Precisions []string
	// PacketsPerFlow bounds the nprint feature rows for the RF.
	PacketsPerFlow int

	Synth core.Config
	RF    rf.Config
	Seed  uint64
}

// DefaultFrontierConfig returns the CPU-budget sweep the quant bench
// suite ships: fp32/64-step reference, both precisions at 4/8/16
// steps.
func DefaultFrontierConfig() FrontierConfig {
	synth := core.DefaultConfig()
	// Small spatial model, but a schedule long enough that the 64-step
	// reference budget is meaningful.
	synth.Rows = 16
	synth.DownH, synth.DownW = 2, 16
	synth.Hidden = 48
	synth.TimeSteps = 80
	synth.BaseSteps = 25
	synth.FineTuneSteps = 35
	synth.Batch = 8
	return FrontierConfig{
		Classes:        []string{"amazon", "teams"},
		TrainFlows:     12,
		TestFlows:      6,
		GenFlows:       6,
		RefSteps:       64,
		Steps:          []int{4, 8, 16},
		Precisions:     []string{"fp32", "int8"},
		PacketsPerFlow: 12,
		Synth:          synth,
		RF:             rf.DefaultConfig(),
		Seed:           29,
	}
}

// FrontierPoint is one measured configuration.
type FrontierPoint struct {
	Precision string  `json:"precision"`
	Steps     int     `json:"steps"`
	FlowsPerS float64 `json:"flows_per_s"`
	// Speedup is FlowsPerS relative to the reference point (1.0 there).
	Speedup float64 `json:"speedup"`
	// RFMicro/RFMacro are Synthetic/Real RF accuracies: a forest trained
	// on this point's generated flows, tested on held-out real flows.
	RFMicro float64 `json:"rf_micro"`
	RFMacro float64 `json:"rf_macro"`
	// Reference marks the fp32 full-budget baseline the gate compares
	// against.
	Reference bool `json:"reference,omitempty"`
}

// FrontierReport is the sweep output.
type FrontierReport struct {
	Points []FrontierPoint `json:"points"`
}

// ReferencePoint returns the report's reference point, or an error
// when it is missing or ambiguous.
func (r *FrontierReport) ReferencePoint() (FrontierPoint, error) {
	var ref FrontierPoint
	found := false
	for _, p := range r.Points {
		if !p.Reference {
			continue
		}
		if found {
			return ref, fmt.Errorf("eval: frontier report has multiple reference points")
		}
		ref, found = p, true
	}
	if !found {
		return ref, fmt.Errorf("eval: frontier report has no reference point")
	}
	return ref, nil
}

// RunFrontier trains one synthesizer and measures every (precision,
// steps) configuration over identical weights: each point is a
// Save/Load clone of the trained model with only the sampler budget
// and weight precision changed, so the frontier isolates exactly the
// two levers under study.
func RunFrontier(cfg FrontierConfig) (*FrontierReport, error) {
	if cfg.TrainFlows <= 0 || cfg.TestFlows <= 0 || cfg.GenFlows <= 0 {
		return nil, fmt.Errorf("eval: non-positive frontier sizes")
	}
	if cfg.RefSteps <= 0 || cfg.RefSteps > cfg.Synth.TimeSteps {
		return nil, fmt.Errorf("eval: reference steps %d outside schedule T=%d", cfg.RefSteps, cfg.Synth.TimeSteps)
	}
	total := cfg.TrainFlows + cfg.TestFlows
	ds, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, FlowsPerClass: total, Only: cfg.Classes,
		MaxPacketsPerFlow: cfg.Synth.Rows,
	})
	if err != nil {
		return nil, err
	}
	train, test := ds.Split(float64(cfg.TrainFlows)/float64(total), cfg.Seed+1)
	byClass := map[string][]*flow.Flow{}
	for _, f := range train.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	synth, err := core.New(cfg.Synth, cfg.Classes)
	if err != nil {
		return nil, err
	}
	if _, err := synth.FineTune(byClass); err != nil {
		return nil, fmt.Errorf("fine-tune: %w", err)
	}
	var ckpt bytes.Buffer
	if err := synth.Save(&ckpt); err != nil {
		return nil, err
	}
	snapshot := ckpt.Bytes()

	rep := &FrontierReport{}
	ref, err := measureFrontierPoint(snapshot, "fp32", cfg.RefSteps, test.Flows, cfg)
	if err != nil {
		return nil, fmt.Errorf("reference point: %w", err)
	}
	ref.Reference = true
	ref.Speedup = 1
	rep.Points = append(rep.Points, ref)

	for _, prec := range cfg.Precisions {
		for _, steps := range cfg.Steps {
			p, err := measureFrontierPoint(snapshot, prec, steps, test.Flows, cfg)
			if err != nil {
				return nil, fmt.Errorf("point %s/%d: %w", prec, steps, err)
			}
			p.Speedup = p.FlowsPerS / ref.FlowsPerS
			rep.Points = append(rep.Points, p)
		}
	}
	return rep, nil
}

// measureFrontierPoint loads a fresh synthesizer from the snapshot,
// applies the point's precision and budget, and measures throughput
// plus Synthetic/Real RF accuracy.
func measureFrontierPoint(snapshot []byte, precision string, steps int, testFlows []*flow.Flow, cfg FrontierConfig) (FrontierPoint, error) {
	pt := FrontierPoint{Precision: precision, Steps: steps}
	s, err := core.Load(bytes.NewReader(snapshot))
	if err != nil {
		return pt, err
	}
	if err := s.SetPrecision(precision); err != nil {
		return pt, err
	}
	s.SetDDIMSteps(steps)

	start := time.Now()
	gen, err := s.GenerateBalanced(cfg.GenFlows)
	if err != nil {
		return pt, err
	}
	pt.FlowsPerS = float64(len(gen)) / time.Since(start).Seconds()

	t2 := Table2Config{RF: cfg.RF, Seed: cfg.Seed, PacketsPerFlow: cfg.PacketsPerFlow}
	cell, err := evalPair(gen, testFlows, GranularityNprint, t2, MicroSpace(cfg.Classes), MacroSpace(cfg.Classes))
	if err != nil {
		return pt, err
	}
	pt.RFMicro, pt.RFMacro = cell.Micro, cell.Macro
	return pt, nil
}

// GateFrontier is the CI fidelity-vs-speed gate: every swept point
// must hold Synthetic/Real micro accuracy within tol (absolute) of the
// reference, and when minSpeedup > 0, at least one int8 point must be
// at least that much faster than the reference. It is a pure function
// of the report so a deliberately-bad report is unit-testable.
func GateFrontier(rep *FrontierReport, tol, minSpeedup float64) error {
	if tol < 0 {
		return fmt.Errorf("eval: negative frontier tolerance %v", tol)
	}
	ref, err := rep.ReferencePoint()
	if err != nil {
		return err
	}
	var bestInt8 float64
	for _, p := range rep.Points {
		if p.Reference {
			continue
		}
		if p.RFMicro < ref.RFMicro-tol {
			return fmt.Errorf("eval: frontier point %s/%d-step micro accuracy %.3f below reference %.3f - tol %.3f",
				p.Precision, p.Steps, p.RFMicro, ref.RFMicro, tol)
		}
		if p.Precision == "int8" && p.Speedup > bestInt8 {
			bestInt8 = p.Speedup
		}
	}
	if minSpeedup > 0 && bestInt8 < minSpeedup {
		return fmt.Errorf("eval: best int8 speedup %.2fx below required %.2fx", bestInt8, minSpeedup)
	}
	return nil
}

// FrontierReportString renders the frontier as the table EXPERIMENTS.md
// reproduces.
func FrontierReportString(rep *FrontierReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %12s %9s %9s %9s\n", "precision", "steps", "flows/s", "speedup", "rf-micro", "rf-macro")
	fmt.Fprintln(&b, strings.Repeat("-", 60))
	for _, p := range rep.Points {
		mark := ""
		if p.Reference {
			mark = " (ref)"
		}
		fmt.Fprintf(&b, "%-10s %6d %12.2f %8.2fx %9.3f %9.3f%s\n",
			p.Precision, p.Steps, p.FlowsPerS, p.Speedup, p.RFMicro, p.RFMacro, mark)
	}
	return b.String()
}
