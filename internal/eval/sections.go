package eval

import (
	"fmt"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/gan"
	"trafficdiff/internal/netflow"
	"trafficdiff/internal/rf"
	"trafficdiff/internal/workload"
)

// GranularityConfig parameterizes the §2.3 inline measurement: RF on
// real data at raw-packet vs NetFlow granularity (paper: 94% vs 85%
// micro accuracy).
type GranularityConfig struct {
	Classes            []string
	TrainFlowsPerClass int
	TestFlowsPerClass  int
	PacketsPerFlow     int
	MaxPacketsPerFlow  int
	RF                 rf.Config
	Seed               uint64
}

// DefaultGranularityConfig returns CPU-friendly settings.
func DefaultGranularityConfig() GranularityConfig {
	return GranularityConfig{
		Classes:            workload.ClassNames(),
		TrainFlowsPerClass: 24, TestFlowsPerClass: 8,
		PacketsPerFlow: 12, MaxPacketsPerFlow: 32,
		RF: rf.DefaultConfig(), Seed: 5,
	}
}

// GranularityResult compares micro-level accuracy across feature
// granularities on real data.
type GranularityResult struct {
	NprintMicro  float64
	NetFlowMicro float64
	NprintMacro  float64
	NetFlowMacro float64
}

// RunGranularity executes the comparison.
func RunGranularity(cfg GranularityConfig) (*GranularityResult, error) {
	total := cfg.TrainFlowsPerClass + cfg.TestFlowsPerClass
	ds, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, FlowsPerClass: total, Only: cfg.Classes,
		MaxPacketsPerFlow: cfg.MaxPacketsPerFlow,
	})
	if err != nil {
		return nil, err
	}
	train, test := ds.Split(float64(cfg.TrainFlowsPerClass)/float64(total), cfg.Seed+1)
	micro := MicroSpace(cfg.Classes)
	macro := MacroSpace(cfg.Classes)

	t2 := Table2Config{PacketsPerFlow: cfg.PacketsPerFlow, RF: cfg.RF, Seed: cfg.Seed}
	np, err := evalPair(train.Flows, test.Flows, GranularityNprint, t2, micro, macro)
	if err != nil {
		return nil, err
	}
	nf, err := evalPair(train.Flows, test.Flows, GranularityNetFlow, t2, micro, macro)
	if err != nil {
		return nil, err
	}
	return &GranularityResult{
		NprintMicro: np.Micro, NetFlowMicro: nf.Micro,
		NprintMacro: np.Macro, NetFlowMacro: nf.Macro,
	}, nil
}

// PerClassGANConfig parameterizes the §2.3 supplemental experiment:
// one GAN per class, then Synthetic/Real classification.
type PerClassGANConfig struct {
	Classes            []string
	TrainFlowsPerClass int
	TestFlowsPerClass  int
	SynthPerClass      int
	GAN                gan.Config
	RF                 rf.Config
	MaxPacketsPerFlow  int
	Seed               uint64
}

// DefaultPerClassGANConfig returns CPU-friendly settings.
func DefaultPerClassGANConfig() PerClassGANConfig {
	return PerClassGANConfig{
		Classes:            workload.ClassNames(),
		TrainFlowsPerClass: 24, TestFlowsPerClass: 8, SynthPerClass: 8,
		GAN: gan.DefaultConfig(), RF: rf.DefaultConfig(),
		MaxPacketsPerFlow: 32, Seed: 13,
	}
}

// PerClassGANResult reports the Synthetic/Real accuracies when a
// separate GAN is trained per class (the paper finds "negligible
// improvement": still ~0.20 micro).
type PerClassGANResult struct {
	SynthRealMicro float64
	SynthRealMacro float64
}

// RunPerClassGAN executes the experiment.
func RunPerClassGAN(cfg PerClassGANConfig) (*PerClassGANResult, error) {
	if len(cfg.Classes) < 2 {
		return nil, fmt.Errorf("eval: per-class GAN needs >= 2 classes")
	}
	total := cfg.TrainFlowsPerClass + cfg.TestFlowsPerClass
	ds, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, FlowsPerClass: total, Only: cfg.Classes,
		MaxPacketsPerFlow: cfg.MaxPacketsPerFlow,
	})
	if err != nil {
		return nil, err
	}
	train, test := ds.Split(float64(cfg.TrainFlowsPerClass)/float64(total), cfg.Seed+1)
	micro := MicroSpace(cfg.Classes)
	macro := MacroSpace(cfg.Classes)

	byClass := map[string][]*flow.Flow{}
	for _, f := range train.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}

	// One GAN per class; labels are known by construction. Like the
	// joint baseline, each GAN models the complete record including the
	// identifier fields, which are dropped again before classification.
	var synthX [][]float32
	var synthMicro []int
	for ci, class := range cfg.Classes {
		var feats [][]float64
		labels := make([]int, 0, len(byClass[class]))
		for _, f := range byClass[class] {
			feats = append(feats, netflow.FromFlow(f).FullVector())
			labels = append(labels, 0)
		}
		gcfg := cfg.GAN
		gcfg.Seed = cfg.Seed + uint64(ci)*17
		model, err := gan.Train(feats, labels, 1, gcfg)
		if err != nil {
			return nil, fmt.Errorf("class %q: %w", class, err)
		}
		genFull, _ := model.Generate(cfg.SynthPerClass, cfg.Seed+uint64(ci)*31)
		for _, full := range genFull {
			row := netflow.ClassifierFeaturesFromFull(full)
			f32 := make([]float32, len(row))
			for j, v := range row {
				f32[j] = float32(v)
			}
			synthX = append(synthX, f32)
			synthMicro = append(synthMicro, ci)
		}
	}

	t2 := Table2Config{PacketsPerFlow: 8, RF: cfg.RF, Seed: cfg.Seed}
	cell, err := evalPairGAN(test.Flows, synthX, synthMicro, true, t2, micro, macro)
	if err != nil {
		return nil, err
	}
	return &PerClassGANResult{SynthRealMicro: cell.Micro, SynthRealMacro: cell.Macro}, nil
}
