package eval

import (
	"strings"
	"testing"
)

func TestRunSpeedSweep(t *testing.T) {
	cfg := DefaultSpeedConfig()
	cfg.TrainFlows = 4
	cfg.GenFlows = 2
	cfg.DDIMSteps = []int{0, 5}
	cfg.Int8Steps = []int{5}
	cfg.Synth = tinySynth()
	cfg.GAN = tinyGAN()
	res, err := RunSpeed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // ddpm, ddim-5, int8 ddim-5, gan
		t.Fatalf("rows = %d", len(res.Rows))
	}
	ddpm, ddim, int8Row, gan := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	if ddpm.FlowsPerS <= 0 || ddim.FlowsPerS <= 0 || int8Row.FlowsPerS <= 0 {
		t.Fatalf("non-positive throughput: %+v %+v %+v", ddpm, ddim, int8Row)
	}
	// Fewer sampler steps must be faster.
	if ddim.FlowsPerS <= ddpm.FlowsPerS {
		t.Errorf("ddim-5 (%v flows/s) not faster than full ddpm (%v flows/s)",
			ddim.FlowsPerS, ddpm.FlowsPerS)
	}
	// The one-shot GAN dwarfs both (records, not packets).
	if gan.RecordsPer <= ddim.FlowsPerS {
		t.Errorf("gan records/s (%v) should dwarf diffusion flows/s (%v)",
			gan.RecordsPer, ddim.FlowsPerS)
	}
	rep := SpeedReport(res)
	for _, want := range []string{"ddpm (full)", "ddim-5", "int8 ddim-5", "gan"} {
		if !strings.Contains(rep, want) {
			t.Errorf("speed report missing %q", want)
		}
	}
}

func TestRunSpeedValidation(t *testing.T) {
	cfg := DefaultSpeedConfig()
	cfg.GenFlows = 0
	if _, err := RunSpeed(cfg); err == nil {
		t.Fatal("zero GenFlows should fail")
	}
}

func TestRunFidelity(t *testing.T) {
	cfg := DefaultFidelityConfig()
	cfg.TrainFlows = 8
	cfg.TestFlows = 8
	cfg.GenFlows = 4
	cfg.Synth = tinySynth()
	cfg.HMM.Iterations = 5
	res, err := RunFidelity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // real control, heuristic, hmm, ours
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]FidelityRow{}
	for _, r := range res.Rows {
		if r.SizeKS < 0 || r.SizeKS > 1 || r.GapKS < 0 || r.GapKS > 1 {
			t.Fatalf("%s KS out of range: %+v", r.Name, r)
		}
		byName[r.Name] = r
	}
	// The real control sets the floor: no generator should beat it by
	// a wide margin (that would mean leakage), and the HMM covers no
	// header features.
	if byName["hmm"].HeaderCoverage != 0 {
		t.Error("hmm should cover zero header features")
	}
	if byName["real (control)"].TCPConformance != 1 {
		t.Errorf("real control conformance = %v", byName["real (control)"].TCPConformance)
	}
	// The heuristic baseline's statelessness shows up as low TCP
	// conformance relative to real.
	if byName["heuristic"].TCPConformance >= byName["real (control)"].TCPConformance {
		t.Error("heuristic should be less conformant than real traffic")
	}
	rep := FidelityReport(res)
	if !strings.Contains(rep, "diffusion (ours)") {
		t.Error("fidelity report missing our row")
	}
}

func TestRunFidelityValidation(t *testing.T) {
	cfg := DefaultFidelityConfig()
	cfg.GenFlows = 0
	if _, err := RunFidelity(cfg); err == nil {
		t.Fatal("zero GenFlows should fail")
	}
}
