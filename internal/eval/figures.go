package eval

import (
	"bytes"
	"fmt"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/gan"
	"trafficdiff/internal/imagerep"
	"trafficdiff/internal/netflow"
	"trafficdiff/internal/nprint"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/workload"
)

// Fig1Config parameterizes the class-coverage study (Figure 1).
type Fig1Config struct {
	// Classes under study: all 11 for Figure 1(a), netflix+youtube for
	// Figure 1(b).
	Classes []string
	// Scale sizes the imbalanced real dataset from Table 1 counts.
	Scale float64
	// SynthTotal is the number of synthetic flows drawn from each
	// generator (ours spreads them evenly; the GAN draws freely).
	SynthTotal int
	Synth      core.Config
	GAN        gan.Config
	Seed       uint64
}

// DefaultFig1Config returns the 11-class configuration.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{
		Classes: workload.ClassNames(), Scale: 0.02, SynthTotal: 110,
		Synth: core.DefaultConfig(), GAN: gan.DefaultConfig(), Seed: 21,
	}
}

// Fig1Result holds per-class proportions for the three sources.
type Fig1Result struct {
	Classes []string
	// Proportions in [0,1], aligned with Classes.
	Real, GAN, Ours []float64
	// Imbalance ratios (max/min proportion) — the scalar the figure
	// visualizes: the GAN amplifies real imbalance, ours flattens it.
	ImbalanceReal, ImbalanceGAN, ImbalanceOurs float64
}

// RunFig1 reproduces Figure 1: the class distribution of real data,
// GAN-generated data, and our balanced diffusion generation.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	if len(cfg.Classes) < 2 {
		return nil, fmt.Errorf("eval: fig1 needs >= 2 classes")
	}
	if cfg.SynthTotal < len(cfg.Classes) {
		return nil, fmt.Errorf("eval: SynthTotal %d < classes %d", cfg.SynthTotal, len(cfg.Classes))
	}
	ds, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, Scale: cfg.Scale, Only: cfg.Classes,
		MaxPacketsPerFlow: cfg.Synth.Rows,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{Classes: cfg.Classes}
	realCounts := ds.CountVector()
	res.Real = stats.Normalize(realCounts)
	res.ImbalanceReal = stats.ImbalanceRatio(realCounts)

	micro := MicroSpace(cfg.Classes)

	// GAN: label generated as a feature — measure the label histogram.
	// The GAN models the full record (identifier fields included).
	var feats [][]float64
	var labels []int
	for _, f := range ds.Flows {
		feats = append(feats, netflow.FromFlow(f).FullVector())
		id, err := micro.LabelOf(f)
		if err != nil {
			return nil, err
		}
		labels = append(labels, id)
	}
	gcfg := cfg.GAN
	gcfg.Seed = cfg.Seed + 1
	model, err := gan.Train(feats, labels, micro.K(), gcfg)
	if err != nil {
		return nil, err
	}
	_, genLabels := model.Generate(cfg.SynthTotal, cfg.Seed+2)
	ganCounts := make([]float64, micro.K())
	for _, l := range genLabels {
		ganCounts[l]++
	}
	res.GAN = stats.Normalize(ganCounts)
	res.ImbalanceGAN = stats.ImbalanceRatio(ganCounts)

	// Ours: invoke generation equally per class.
	synth, err := core.New(cfg.Synth, cfg.Classes)
	if err != nil {
		return nil, err
	}
	byClass := map[string][]*flow.Flow{}
	for _, f := range ds.Flows {
		byClass[f.Label] = append(byClass[f.Label], f)
	}
	if _, err := synth.FineTune(byClass); err != nil {
		return nil, err
	}
	perClass := cfg.SynthTotal / len(cfg.Classes)
	ours, err := synth.GenerateBalanced(perClass)
	if err != nil {
		return nil, err
	}
	oursCounts := make([]float64, micro.K())
	for _, f := range ours {
		id, err := micro.LabelOf(f)
		if err != nil {
			return nil, err
		}
		oursCounts[id]++
	}
	res.Ours = stats.Normalize(oursCounts)
	res.ImbalanceOurs = stats.ImbalanceRatio(oursCounts)
	return res, nil
}

// Fig2Config parameterizes the Figure 2 reproduction (image rendering
// of a synthetic flow + protocol-compliance audit).
type Fig2Config struct {
	// Class is the application rendered (the paper shows Amazon).
	Class string
	// TrainFlows is the per-class fine-tuning size.
	TrainFlows int
	Synth      core.Config
	Seed       uint64
}

// DefaultFig2Config matches the paper's Amazon example.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{Class: "amazon", TrainFlows: 16, Synth: core.DefaultConfig(), Seed: 33}
}

// Fig2Result carries the rendered image and the compliance audit.
type Fig2Result struct {
	Class string
	// PNG is the color-processed synthetic flow image (rows = packets,
	// 1088 bit columns; red=1, green=0, grey=-1).
	PNG []byte
	// Rows is the packet count of the rendered flow.
	Rows int
	// RawProtocolCompliance is measured before constraint projection;
	// PostProtocolCompliance after (always 1 when ControlNet is on).
	RawProtocolCompliance  float64
	PostProtocolCompliance float64
	// SectionActive reports, per header section, the fraction of rows
	// with any populated bits — the Figure 2 visual: TCP and IPv4 full,
	// UDP and ICMP vacant (for Amazon).
	SectionActive map[string]float64
}

// RunFig2 trains on one class and renders a synthetic flow.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	if _, ok := workload.ProfileByName(cfg.Class); !ok {
		return nil, fmt.Errorf("eval: unknown class %q", cfg.Class)
	}
	ds, err := workload.Generate(workload.Config{
		Seed: cfg.Seed, FlowsPerClass: cfg.TrainFlows, Only: []string{cfg.Class},
		MaxPacketsPerFlow: cfg.Synth.Rows,
	})
	if err != nil {
		return nil, err
	}
	synth, err := core.New(cfg.Synth, []string{cfg.Class})
	if err != nil {
		return nil, err
	}
	if _, err := synth.FineTune(map[string][]*flow.Flow{cfg.Class: ds.Flows}); err != nil {
		return nil, err
	}
	res, err := synth.Generate(cfg.Class, 1)
	if err != nil {
		return nil, err
	}
	m := res.Matrices[0]
	tpl, err := synth.Template(cfg.Class)
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{
		Class:                  cfg.Class,
		Rows:                   m.NumRows,
		RawProtocolCompliance:  res.RawCompliance,
		PostProtocolCompliance: tpl.ProtocolCompliance(m),
		SectionActive:          sectionActivity(m),
	}
	var buf bytes.Buffer
	if err := imagerep.RenderPNG(&buf, imagerep.FromMatrix(m)); err != nil {
		return nil, err
	}
	out.PNG = buf.Bytes()
	return out, nil
}

// sectionActivity computes the per-section populated-row fractions.
func sectionActivity(m *nprint.Matrix) map[string]float64 {
	sections := map[string][2]int{
		"ipv4": {nprint.IPv4Offset, nprint.IPv4Bits},
		"tcp":  {nprint.TCPOffset, nprint.TCPBits},
		"udp":  {nprint.UDPOffset, nprint.UDPBits},
		"icmp": {nprint.ICMPOffset, nprint.ICMPBits},
	}
	out := map[string]float64{}
	for name, span := range sections {
		active := 0
		for r := 0; r < m.NumRows; r++ {
			if !nprint.SectionVacant(m.Row(r), span[0], span[1]) {
				active++
			}
		}
		if m.NumRows > 0 {
			out[name] = float64(active) / float64(m.NumRows)
		}
	}
	return out
}
