// Package imagerep converts nprint bit matrices to and from the image
// representation the diffusion model operates on, and renders the
// paper's Figure 2 style visualizations.
//
// The paper maps each nprint cell to a pixel: red for bits valued 1,
// green for 0, grey for -1 (vacant). Numerically we keep a single
// channel with the cell's value in {-1, 0, +1}; the diffusion model
// works in this continuous space, and Quantize ("color processing" in
// the paper) snaps samples back onto the three legal values.
package imagerep

import (
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"trafficdiff/internal/nprint"
)

// Image is a single-channel float32 image, row-major.
type Image struct {
	H, W int
	Pix  []float32
}

// NewImage allocates a zero image.
func NewImage(h, w int) *Image {
	return &Image{H: h, W: w, Pix: make([]float32, h*w)}
}

// At returns the pixel at (row, col).
func (im *Image) At(r, c int) float32 { return im.Pix[r*im.W+c] }

// Set writes the pixel at (row, col).
func (im *Image) Set(r, c int, v float32) { im.Pix[r*im.W+c] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	return &Image{H: im.H, W: im.W, Pix: append([]float32(nil), im.Pix...)}
}

// ErrShapeMismatch reports incompatible dimensions.
var ErrShapeMismatch = errors.New("imagerep: shape mismatch")

// FromMatrix lifts an nprint matrix into image space. The image is
// NumRows x BitsPerPacket with values exactly -1, 0 or +1.
func FromMatrix(m *nprint.Matrix) *Image {
	im := NewImage(m.NumRows, nprint.BitsPerPacket)
	for i, v := range m.Data {
		im.Pix[i] = float32(v)
	}
	return im
}

// ToMatrix quantizes an image back to an nprint matrix. The image
// width must be BitsPerPacket.
func ToMatrix(im *Image) (*nprint.Matrix, error) {
	if im.W != nprint.BitsPerPacket {
		return nil, fmt.Errorf("%w: width %d, want %d", ErrShapeMismatch, im.W, nprint.BitsPerPacket)
	}
	m := nprint.NewMatrix(im.H)
	for i, v := range im.Pix {
		m.Data[i] = QuantizeValue(v)
	}
	return m, nil
}

// QuantizeValue snaps a continuous sample onto the nearest legal
// nprint value: thresholds at ±0.5.
func QuantizeValue(v float32) int8 {
	switch {
	case v <= -0.5:
		return nprint.Vacant
	case v >= 0.5:
		return nprint.One
	default:
		return nprint.Zero
	}
}

// Quantize snaps every pixel onto {-1, 0, +1} in place and returns im.
// It is idempotent.
func Quantize(im *Image) *Image {
	for i, v := range im.Pix {
		im.Pix[i] = float32(QuantizeValue(v))
	}
	return im
}

// Downscale reduces the image by integer factors using mean pooling.
// H must be divisible by fh and W by fw.
func Downscale(im *Image, fh, fw int) (*Image, error) {
	if fh <= 0 || fw <= 0 || im.H%fh != 0 || im.W%fw != 0 {
		return nil, fmt.Errorf("%w: %dx%d not divisible by %dx%d", ErrShapeMismatch, im.H, im.W, fh, fw)
	}
	out := NewImage(im.H/fh, im.W/fw)
	norm := 1 / float32(fh*fw)
	for r := 0; r < out.H; r++ {
		for c := 0; c < out.W; c++ {
			var sum float32
			for i := 0; i < fh; i++ {
				row := (r*fh + i) * im.W
				for j := 0; j < fw; j++ {
					sum += im.Pix[row+c*fw+j]
				}
			}
			out.Pix[r*out.W+c] = sum * norm
		}
	}
	return out, nil
}

// Upscale enlarges the image by integer factors using nearest-neighbor
// replication (the inverse of Downscale for piecewise-constant
// content).
func Upscale(im *Image, fh, fw int) (*Image, error) {
	if fh <= 0 || fw <= 0 {
		return nil, fmt.Errorf("%w: non-positive factors %dx%d", ErrShapeMismatch, fh, fw)
	}
	out := NewImage(im.H*fh, im.W*fw)
	for r := 0; r < out.H; r++ {
		src := (r / fh) * im.W
		dst := r * out.W
		for c := 0; c < out.W; c++ {
			out.Pix[dst+c] = im.Pix[src+c/fw]
		}
	}
	return out, nil
}

// PadRows extends the image to h rows, filling new rows with fill
// (use -1 to mark vacant packets). It returns im unchanged if it
// already has at least h rows.
func PadRows(im *Image, h int, fill float32) *Image {
	if im.H >= h {
		return im
	}
	out := NewImage(h, im.W)
	copy(out.Pix, im.Pix)
	for i := im.H * im.W; i < len(out.Pix); i++ {
		out.Pix[i] = fill
	}
	return out
}

// Figure 2 palette: red for 1, green for 0, grey for -1.
var (
	colorOne    = color.RGBA{R: 0xd6, G: 0x2a, B: 0x2a, A: 0xff}
	colorZero   = color.RGBA{R: 0x2a, G: 0xa0, B: 0x2a, A: 0xff}
	colorVacant = color.RGBA{R: 0x9a, G: 0x9a, B: 0x9a, A: 0xff}
)

// RenderPNG writes the quantized image as a Figure 2 style PNG.
func RenderPNG(w io.Writer, im *Image) error {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for r := 0; r < im.H; r++ {
		for c := 0; c < im.W; c++ {
			var col color.RGBA
			switch QuantizeValue(im.At(r, c)) {
			case nprint.One:
				col = colorOne
			case nprint.Zero:
				col = colorZero
			default:
				col = colorVacant
			}
			out.SetRGBA(c, r, col)
		}
	}
	return png.Encode(w, out)
}

// ColumnActivity returns, per column, the fraction of rows whose cell
// is non-vacant. The controlnet package derives protocol templates
// from this profile.
func ColumnActivity(im *Image) []float64 {
	act := make([]float64, im.W)
	if im.H == 0 {
		return act
	}
	for r := 0; r < im.H; r++ {
		for c := 0; c < im.W; c++ {
			if QuantizeValue(im.At(r, c)) != nprint.Vacant {
				act[c]++
			}
		}
	}
	for c := range act {
		act[c] /= float64(im.H)
	}
	return act
}

// ParsePNG reads a Figure 2 style PNG back into a quantized image,
// mapping each pixel to the nearest palette color (red=1, green=0,
// grey=-1). Together with RenderPNG it makes the visual representation
// itself round-trippable, so an edited image can be back-transformed
// into packets.
func ParsePNG(r io.Reader) (*Image, error) {
	src, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("imagerep: decoding png: %w", err)
	}
	bounds := src.Bounds()
	im := NewImage(bounds.Dy(), bounds.Dx())
	palette := []struct {
		c color.RGBA
		v float32
	}{
		{colorOne, 1}, {colorZero, 0}, {colorVacant, -1},
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r16, g16, b16, _ := src.At(bounds.Min.X+x, bounds.Min.Y+y).RGBA()
			r8, g8, b8 := int(r16>>8), int(g16>>8), int(b16>>8)
			best, bestD := float32(-1), 1<<30
			for _, p := range palette {
				d := sq(r8-int(p.c.R)) + sq(g8-int(p.c.G)) + sq(b8-int(p.c.B))
				if d < bestD {
					best, bestD = p.v, d
				}
			}
			im.Set(y, x, best)
		}
	}
	return im, nil
}

func sq(x int) int { return x * x }
