package imagerep

import (
	"bytes"
	"image/png"
	"math"
	"testing"
	"testing/quick"
	"time"

	"trafficdiff/internal/nprint"
	"trafficdiff/internal/packet"
)

func sampleMatrix(t testing.TB) *nprint.Matrix {
	t.Helper()
	var b packet.Builder
	ip := packet.IPv4{TTL: 64, SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}}
	m := nprint.NewMatrix(3)
	p := b.BuildTCP(time.Unix(0, 0), ip, packet.TCP{SrcPort: 443, DstPort: 1000, Flags: packet.FlagACK}, nil)
	for i := 0; i < 3; i++ {
		nprint.EncodePacket(m.Row(i), p)
	}
	return m
}

func TestMatrixImageRoundTrip(t *testing.T) {
	m := sampleMatrix(t)
	im := FromMatrix(m)
	if im.H != 3 || im.W != nprint.BitsPerPacket {
		t.Fatalf("image shape %dx%d", im.H, im.W)
	}
	back, err := ToMatrix(im)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if m.Data[i] != back.Data[i] {
			t.Fatalf("cell %d: %d != %d", i, m.Data[i], back.Data[i])
		}
	}
}

func TestToMatrixRejectsWrongWidth(t *testing.T) {
	if _, err := ToMatrix(NewImage(2, 100)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestQuantizeValueThresholds(t *testing.T) {
	cases := []struct {
		in   float32
		want int8
	}{
		{-1, -1}, {-0.51, -1}, {-0.5, -1}, {-0.49, 0}, {0, 0},
		{0.49, 0}, {0.5, 1}, {0.51, 1}, {1, 1}, {2.5, 1}, {-7, -1},
	}
	for _, c := range cases {
		if got := QuantizeValue(c.in); got != c.want {
			t.Errorf("QuantizeValue(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	f := func(vals [16]float32) bool {
		im := &Image{H: 4, W: 4, Pix: vals[:]}
		once := Quantize(im.Clone())
		twice := Quantize(once.Clone())
		for i := range once.Pix {
			if once.Pix[i] != twice.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDownscaleMeanPooling(t *testing.T) {
	im := NewImage(2, 4)
	copy(im.Pix, []float32{1, 1, 0, 0, 1, 1, -1, -1})
	out, err := Downscale(im, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 1 || out.W != 2 {
		t.Fatalf("shape %dx%d", out.H, out.W)
	}
	if out.Pix[0] != 1 || out.Pix[1] != -0.5 {
		t.Fatalf("pooled = %v", out.Pix)
	}
}

func TestDownscaleRejectsNonDivisible(t *testing.T) {
	if _, err := Downscale(NewImage(3, 4), 2, 2); err == nil {
		t.Fatal("expected error for non-divisible height")
	}
}

func TestUpscaleNearestNeighbor(t *testing.T) {
	im := NewImage(1, 2)
	im.Pix[0], im.Pix[1] = 1, -1
	out, err := Upscale(im, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 2 || out.W != 6 {
		t.Fatalf("shape %dx%d", out.H, out.W)
	}
	want := []float32{1, 1, 1, -1, -1, -1, 1, 1, 1, -1, -1, -1}
	for i := range want {
		if out.Pix[i] != want[i] {
			t.Fatalf("upscaled = %v", out.Pix)
		}
	}
}

func TestDownUpRoundTripOnBlocks(t *testing.T) {
	// Piecewise-constant content (constant within factor blocks)
	// survives downscale+upscale exactly.
	im := NewImage(4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := float32(1)
			if c >= 2 {
				v = -1
			}
			im.Set(r, c, v)
		}
	}
	down, err := Downscale(im, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	up, err := Upscale(down, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if im.Pix[i] != up.Pix[i] {
			t.Fatalf("block content not preserved at %d", i)
		}
	}
}

func TestPadRows(t *testing.T) {
	im := NewImage(2, 3)
	for i := range im.Pix {
		im.Pix[i] = 1
	}
	out := PadRows(im, 4, -1)
	if out.H != 4 {
		t.Fatalf("H = %d", out.H)
	}
	if out.At(1, 2) != 1 || out.At(3, 0) != -1 {
		t.Fatal("pad content wrong")
	}
	same := PadRows(im, 1, -1)
	if same != im {
		t.Fatal("PadRows should be a no-op when already tall enough")
	}
}

func TestRenderPNG(t *testing.T) {
	m := sampleMatrix(t)
	im := FromMatrix(m)
	var buf bytes.Buffer
	if err := RenderPNG(&buf, im); err != nil {
		t.Fatal(err)
	}
	cfg, err := png.DecodeConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != nprint.BitsPerPacket || cfg.Height != 3 {
		t.Fatalf("png %dx%d", cfg.Width, cfg.Height)
	}
}

func TestColumnActivity(t *testing.T) {
	m := sampleMatrix(t) // all rows TCP
	im := FromMatrix(m)
	act := ColumnActivity(im)
	// IPv4 byte 0 is always populated.
	if act[0] != 1 {
		t.Errorf("ipv4 col activity = %v", act[0])
	}
	// UDP section must be fully vacant.
	for c := nprint.UDPOffset; c < nprint.UDPOffset+nprint.UDPBits; c++ {
		if act[c] != 0 {
			t.Fatalf("udp column %d active in TCP flow", c)
		}
	}
	if math.Abs(act[nprint.TCPOffset]-1) > 1e-9 {
		t.Errorf("tcp col activity = %v", act[nprint.TCPOffset])
	}
}

func TestColumnActivityEmptyImage(t *testing.T) {
	act := ColumnActivity(NewImage(0, 8))
	for _, a := range act {
		if a != 0 {
			t.Fatal("empty image should have zero activity")
		}
	}
}

func TestPNGRoundTrip(t *testing.T) {
	m := sampleMatrix(t)
	im := FromMatrix(m)
	var buf bytes.Buffer
	if err := RenderPNG(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.H != im.H || back.W != im.W {
		t.Fatalf("shape %dx%d vs %dx%d", back.H, back.W, im.H, im.W)
	}
	for i := range im.Pix {
		if im.Pix[i] != back.Pix[i] {
			t.Fatalf("pixel %d: %v != %v", i, im.Pix[i], back.Pix[i])
		}
	}
	// And all the way back to a matrix.
	m2, err := ToMatrix(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if m.Data[i] != m2.Data[i] {
			t.Fatalf("matrix cell %d lost in png round trip", i)
		}
	}
}

func TestParsePNGRejectsGarbage(t *testing.T) {
	if _, err := ParsePNG(bytes.NewReader([]byte("not a png"))); err == nil {
		t.Fatal("garbage accepted as png")
	}
}
