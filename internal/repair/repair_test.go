package repair

import (
	"testing"
	"time"

	"trafficdiff/internal/core"
	"trafficdiff/internal/flow"
	"trafficdiff/internal/netfunc"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/workload"
)

// conformance runs the stateful checker over a flow.
func conformance(t *testing.T, f *flow.Flow) (violations, tcpPkts int) {
	t.Helper()
	c := netfunc.NewTCPStateChecker()
	for _, p := range f.Packets {
		if p.TCP != nil {
			tcpPkts++
		}
		c.Process(p)
	}
	return c.Violations(), tcpPkts
}

// messyTCPFlow builds a deliberately non-conformant flow: data packets
// with random flags and no handshake.
func messyTCPFlow(t *testing.T, n int) *flow.Flow {
	t.Helper()
	var b packet.Builder
	f := &flow.Flow{Label: "amazon"}
	for i := 0; i < n; i++ {
		srcIP, dstIP := [4]byte{10, 0, 0, 1}, [4]byte{93, 2, 3, 4}
		sp, dp := uint16(40000), uint16(443)
		if i%3 == 0 {
			srcIP, dstIP, sp, dp = dstIP, srcIP, dp, sp
		}
		ip := packet.IPv4{TTL: 60, TOS: 4, SrcIP: srcIP, DstIP: dstIP, ID: uint16(i)}
		tcp := packet.TCP{SrcPort: sp, DstPort: dp,
			Seq: uint32(i * 1111), Ack: uint32(i * 13),
			Flags: packet.FlagPSH, Window: 4000 + uint16(i)}
		f.Append(b.BuildTCP(time.Unix(int64(i), 0), ip, tcp, make([]byte, 50+i)))
	}
	return f
}

func TestRepairAchievesFullConformance(t *testing.T) {
	f := messyTCPFlow(t, 12)
	before, _ := conformance(t, f)
	if before == 0 {
		t.Fatal("test flow unexpectedly conformant")
	}
	fixed, err := TCPStateful(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	after, tcpPkts := conformance(t, fixed)
	if after != 0 {
		t.Fatalf("repair left %d violations of %d packets", after, tcpPkts)
	}
	if len(fixed.Packets) != len(f.Packets) {
		t.Fatalf("packet count changed: %d -> %d", len(f.Packets), len(fixed.Packets))
	}
}

func TestRepairPreservesClassAttributes(t *testing.T) {
	f := messyTCPFlow(t, 12)
	fixed, err := TCPStateful(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	// TTL/TOS/window carry the class signal and must survive.
	for i := range fixed.Packets {
		if fixed.Packets[i].IPv4.TTL != f.Packets[i].IPv4.TTL {
			t.Fatal("TTL changed")
		}
		if fixed.Packets[i].IPv4.TOS != f.Packets[i].IPv4.TOS {
			t.Fatal("TOS changed")
		}
		if fixed.Packets[i].TCP.Window != f.Packets[i].TCP.Window {
			t.Fatal("window changed")
		}
		if !fixed.Packets[i].Timestamp.Equal(f.Packets[i].Timestamp) {
			t.Fatal("timestamp changed")
		}
	}
	// Data-phase payload sizes preserved.
	for i := 3; i < len(f.Packets)-4; i++ {
		if len(fixed.Packets[i].Payload) != len(f.Packets[i].Payload) {
			t.Fatalf("payload size changed at %d", i)
		}
	}
}

func TestRepairCanonicalizes5Tuple(t *testing.T) {
	f := messyTCPFlow(t, 10)
	fixed, _ := TCPStateful(f, 3)
	tbl := flow.NewTable()
	for _, p := range fixed.Packets {
		tbl.Add(p)
	}
	if tbl.Len() != 1 {
		t.Fatalf("repaired flow spans %d 5-tuples, want 1", tbl.Len())
	}
}

func TestRepairSequenceProgression(t *testing.T) {
	f := messyTCPFlow(t, 14)
	fixed, _ := TCPStateful(f, 4)
	last := map[uint16]uint32{}
	for _, p := range fixed.Packets {
		src := p.TCP.SrcPort
		if prev, ok := last[src]; ok && p.TCP.Seq < prev {
			t.Fatal("sequence regression after repair")
		}
		last[src] = p.TCP.Seq
	}
}

func TestRepairShortFlow(t *testing.T) {
	f := messyTCPFlow(t, 4)
	fixed, err := TCPStateful(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := conformance(t, fixed); v != 0 {
		t.Fatalf("short-flow repair left %d violations", v)
	}
}

func TestRepairPassesThroughNonTCP(t *testing.T) {
	g := workload.NewGenerator(1)
	g.MaxPackets = 10
	prof, _ := workload.ProfileByName("teams")
	f := g.GenerateFlow(prof)
	fixed, err := TCPStateful(f, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fixed != f {
		t.Fatal("UDP flow should pass through unchanged")
	}
}

func TestRepairGeneratedDiffusionFlows(t *testing.T) {
	// End to end: pipeline output + repair = fully replayable TCP.
	cfg := core.DefaultConfig()
	cfg.Rows = 16
	cfg.DownH = 2
	cfg.DownW = 16
	cfg.Hidden = 48
	cfg.TimeSteps = 30
	cfg.BaseSteps = 25
	cfg.FineTuneSteps = 40
	cfg.Batch = 8
	cfg.DDIMSteps = 6
	ds, err := workload.Generate(workload.Config{Seed: 4, FlowsPerClass: 6, Only: []string{"amazon"}, MaxPacketsPerFlow: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(cfg, []string{"amazon"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FineTune(map[string][]*flow.Flow{"amazon": ds.Flows}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Generate("amazon", 3)
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := Flows(res.Flows, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range repaired {
		if v, _ := conformance(t, f); v != 0 {
			t.Fatalf("generated flow %d: %d violations after repair", i, v)
		}
		for _, p := range f.Packets {
			if _, err := packet.Decode(p.Data, p.Timestamp); err != nil {
				t.Fatalf("repaired packet undecodable: %v", err)
			}
		}
	}
}

func TestFlowsBatch(t *testing.T) {
	batch := []*flow.Flow{messyTCPFlow(t, 8), messyTCPFlow(t, 9)}
	out, err := Flows(batch, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("batch size %d", len(out))
	}
}
