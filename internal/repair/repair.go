// Package repair post-processes synthetic flows to enforce stateful
// protocol constraints — a concrete response to the paper's §4 open
// challenge ("there's still a need to further explore methods for
// enforcing stricter constraints such as those offered by network
// protocols"). The diffusion pipeline's per-packet generation captures
// header structure but not the cross-packet TCP state machine; this
// pass rewrites a generated flow's 5-tuple, flags and sequence space
// into a valid conversation (handshake, windowed data transfer,
// teardown) while preserving the generated per-packet attributes that
// carry the class signal: sizes, TTLs, TOS, windows, options and
// direction mix.
package repair

import (
	"fmt"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/stats"
)

// TCPStateful returns a repaired copy of a generated TCP flow. Flows
// whose packets are not TCP pass through unchanged (UDP and ICMP have
// no connection state to enforce). Flows with fewer than 2 TCP packets
// are returned unchanged as well: there is no conversation to shape.
func TCPStateful(f *flow.Flow, seed uint64) (*flow.Flow, error) {
	var tcpPkts []*packet.Packet
	for _, p := range f.Packets {
		if p.TCP != nil {
			tcpPkts = append(tcpPkts, p)
		}
	}
	if len(tcpPkts) < 2 || len(tcpPkts) != len(f.Packets) {
		return f, nil
	}
	r := stats.NewRNG(seed)

	// Canonical endpoints: take the first packet's addressing as the
	// client side; the server port is the smaller port seen (well-known
	// side convention), falling back to the first destination.
	first := tcpPkts[0]
	client, server := first.IPv4.SrcIP, first.IPv4.DstIP
	cPort, sPort := first.TCP.SrcPort, first.TCP.DstPort
	if sPort > cPort {
		// Keep the convention "server = low port" when the generated
		// ports suggest otherwise.
		cPort, sPort = sPort, cPort
	}

	cliSeq := uint32(r.Uint64())
	srvSeq := uint32(r.Uint64())
	out := &flow.Flow{Label: f.Label}
	var b packet.Builder

	// emit rebuilds packet i with corrected direction, flags and
	// sequence numbers, preserving its generated size/TTL/TOS/window.
	emit := func(src *packet.Packet, fromClient bool, flags packet.TCPFlags, payloadLen int) {
		ip := *src.IPv4
		tcp := *src.TCP
		if fromClient {
			ip.SrcIP, ip.DstIP = client, server
			tcp.SrcPort, tcp.DstPort = cPort, sPort
			tcp.Seq, tcp.Ack = cliSeq, srvSeq
		} else {
			ip.SrcIP, ip.DstIP = server, client
			tcp.SrcPort, tcp.DstPort = sPort, cPort
			tcp.Seq, tcp.Ack = srvSeq, cliSeq
		}
		tcp.Flags = flags
		payload := make([]byte, payloadLen)
		p := b.BuildTCP(src.Timestamp, ip, tcp, payload)
		out.Append(p)
		consumed := uint32(payloadLen)
		if flags&(packet.FlagSYN|packet.FlagFIN) != 0 {
			consumed++
		}
		if fromClient {
			cliSeq += consumed
		} else {
			srvSeq += consumed
		}
	}

	n := len(tcpPkts)
	if n < 7 {
		// Too short for handshake + teardown around data; synthesize a
		// minimal valid exchange over the available packets.
		emit(tcpPkts[0], true, packet.FlagSYN, 0)
		emit(tcpPkts[1%n], false, packet.FlagSYN|packet.FlagACK, 0)
		for i := 2; i < n; i++ {
			emit(tcpPkts[i], true, packet.FlagACK, 0)
		}
		return out, nil
	}

	// Handshake on the first three generated packets.
	emit(tcpPkts[0], true, packet.FlagSYN, 0)
	emit(tcpPkts[1], false, packet.FlagSYN|packet.FlagACK, 0)
	emit(tcpPkts[2], true, packet.FlagACK, 0)

	// Data phase: keep each generated packet's direction (inferred
	// from its source address) and payload size.
	for i := 3; i < n-4; i++ {
		src := tcpPkts[i]
		fromClient := src.IPv4.SrcIP == first.IPv4.SrcIP
		flags := src.TCP.Flags & (packet.FlagPSH | packet.FlagURG)
		flags |= packet.FlagACK
		emit(src, fromClient, flags, len(src.Payload))
	}

	// Teardown on the last four.
	emit(tcpPkts[n-4], true, packet.FlagFIN|packet.FlagACK, 0)
	emit(tcpPkts[n-3], false, packet.FlagACK, 0)
	emit(tcpPkts[n-2], false, packet.FlagFIN|packet.FlagACK, 0)
	emit(tcpPkts[n-1], true, packet.FlagACK, 0)
	return out, nil
}

// Flows applies TCPStateful to a batch with derived seeds.
func Flows(flows []*flow.Flow, seed uint64) ([]*flow.Flow, error) {
	out := make([]*flow.Flow, len(flows))
	for i, f := range flows {
		rf, err := TCPStateful(f, seed+uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("repair: flow %d: %w", i, err)
		}
		out[i] = rf
	}
	return out, nil
}
