// Package netflow extracts NetFlow-like aggregate records from flows —
// the ten derived fields NetShare models (paper §2.3): source and
// destination IP addresses and ports, protocol, start time, duration,
// packet count, byte count, and label.
//
// Records double as the baseline feature representation for the
// service-recognition case study. Per the paper's footnote 1,
// overfitting-prone fields (IP addresses, port numbers, flow start
// times) are removed during feature extraction, so FeatureVector
// exposes only the remaining aggregates plus derived rates.
package netflow

import (
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
)

// Record is one NetFlow-like flow summary.
type Record struct {
	SrcIP    [4]byte
	DstIP    [4]byte
	SrcPort  uint16
	DstPort  uint16
	Protocol packet.IPProtocol
	Start    time.Time
	Duration time.Duration
	Packets  int
	Bytes    int
	Label    string
}

// FromFlow summarizes a flow into a Record.
func FromFlow(f *flow.Flow) Record {
	rec := Record{
		SrcIP:    f.Key.A.IP,
		DstIP:    f.Key.B.IP,
		SrcPort:  f.Key.A.Port,
		DstPort:  f.Key.B.Port,
		Protocol: f.Key.Proto,
		Start:    f.Start(),
		Duration: f.Duration(),
		Packets:  len(f.Packets),
		Bytes:    f.Bytes(),
		Label:    f.Label,
	}
	return rec
}

// NumFeatures is the length of FeatureVector's output.
const NumFeatures = 8

// FeatureNames labels the FeatureVector dimensions.
var FeatureNames = [NumFeatures]string{
	"proto_tcp",
	"proto_udp",
	"proto_icmp",
	"duration_s",
	"packets",
	"bytes",
	"bytes_per_packet",
	"packets_per_s",
}

// FeatureVector converts a record into the numeric features used for
// classification, excluding the overfitting-prone identifier fields.
func (r Record) FeatureVector() []float64 {
	v := make([]float64, NumFeatures)
	switch r.Protocol {
	case packet.ProtoTCP:
		v[0] = 1
	case packet.ProtoUDP:
		v[1] = 1
	case packet.ProtoICMP:
		v[2] = 1
	}
	dur := r.Duration.Seconds()
	v[3] = dur
	v[4] = float64(r.Packets)
	v[5] = float64(r.Bytes)
	if r.Packets > 0 {
		v[6] = float64(r.Bytes) / float64(r.Packets)
	}
	if dur > 0 {
		v[7] = float64(r.Packets) / dur
	}
	return v
}

// FromFlows summarizes a batch.
func FromFlows(flows []*flow.Flow) []Record {
	out := make([]Record, len(flows))
	for i, f := range flows {
		out[i] = FromFlow(f)
	}
	return out
}

// NumFullFields is the length of FullVector's output: the complete
// NetFlow record a NetShare-style generator must model, including the
// high-entropy identifier fields (IP octets, ports, start time) that
// are later excluded from classification features (paper footnote 1).
const NumFullFields = 19

// FullVector renders the complete record as the generative baseline's
// training target: 4+4 IP octets (scaled to [0,1]), source and
// destination ports (scaled), the flow start offset in seconds within
// the capture hour, and then the NumFeatures classification features.
func (r Record) FullVector() []float64 {
	v := make([]float64, 0, NumFullFields)
	for _, o := range r.SrcIP {
		v = append(v, float64(o)/255)
	}
	for _, o := range r.DstIP {
		v = append(v, float64(o)/255)
	}
	v = append(v, float64(r.SrcPort)/65535, float64(r.DstPort)/65535)
	v = append(v, float64(r.Start.Unix()%3600))
	return append(v, r.FeatureVector()...)
}

// ClassifierFeaturesFromFull slices the classification features out of
// a (possibly generated) full record vector, discarding the
// overfitting-prone identifier fields exactly as the evaluation
// pipeline does for real records.
func ClassifierFeaturesFromFull(full []float64) []float64 {
	const idFields = NumFullFields - NumFeatures
	out := make([]float64, NumFeatures)
	copy(out, full[idFields:])
	return out
}
