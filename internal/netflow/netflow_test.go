package netflow

import (
	"testing"
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
)

var t0 = time.Date(2023, 11, 28, 10, 0, 0, 0, time.UTC)

func buildFlow(t *testing.T, n int, proto packet.IPProtocol) *flow.Flow {
	t.Helper()
	var b packet.Builder
	ip := packet.IPv4{TTL: 64, SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 9}}
	tbl := flow.NewTable()
	for i := 0; i < n; i++ {
		ts := t0.Add(time.Duration(i) * time.Second)
		var p *packet.Packet
		switch proto {
		case packet.ProtoTCP:
			p = b.BuildTCP(ts, ip, packet.TCP{SrcPort: 40000, DstPort: 443, Flags: packet.FlagACK}, make([]byte, 100))
		case packet.ProtoUDP:
			p = b.BuildUDP(ts, ip, packet.UDP{SrcPort: 40000, DstPort: 443}, make([]byte, 100))
		default:
			var ic packet.ICMPv4
			ic.Type = packet.ICMPEchoRequest
			p = b.BuildICMP(ts, ip, ic, nil)
		}
		tbl.Add(p)
	}
	f := tbl.Flows()[0]
	f.Label = "netflix"
	return f
}

func TestFromFlowBasics(t *testing.T) {
	f := buildFlow(t, 4, packet.ProtoTCP)
	r := FromFlow(f)
	if r.Packets != 4 {
		t.Errorf("packets = %d", r.Packets)
	}
	if r.Duration != 3*time.Second {
		t.Errorf("duration = %v", r.Duration)
	}
	if r.Protocol != packet.ProtoTCP {
		t.Errorf("protocol = %v", r.Protocol)
	}
	if r.Label != "netflix" {
		t.Errorf("label = %q", r.Label)
	}
	if !r.Start.Equal(t0) {
		t.Errorf("start = %v", r.Start)
	}
	if r.Bytes <= 400 {
		t.Errorf("bytes = %d, want >400 (payload + headers)", r.Bytes)
	}
}

func TestFeatureVectorProtocolOneHot(t *testing.T) {
	for _, tc := range []struct {
		proto packet.IPProtocol
		idx   int
	}{
		{packet.ProtoTCP, 0},
		{packet.ProtoUDP, 1},
		{packet.ProtoICMP, 2},
	} {
		f := buildFlow(t, 2, tc.proto)
		v := FromFlow(f).FeatureVector()
		if len(v) != NumFeatures {
			t.Fatalf("len = %d", len(v))
		}
		for i := 0; i < 3; i++ {
			want := 0.0
			if i == tc.idx {
				want = 1.0
			}
			if v[i] != want {
				t.Errorf("%v one-hot[%d] = %v, want %v", tc.proto, i, v[i], want)
			}
		}
	}
}

func TestFeatureVectorDerived(t *testing.T) {
	f := buildFlow(t, 4, packet.ProtoTCP)
	r := FromFlow(f)
	v := r.FeatureVector()
	if v[3] != 3 {
		t.Errorf("duration feature = %v", v[3])
	}
	if v[4] != 4 {
		t.Errorf("packets feature = %v", v[4])
	}
	wantBPP := float64(r.Bytes) / 4
	if v[6] != wantBPP {
		t.Errorf("bytes/packet = %v, want %v", v[6], wantBPP)
	}
	if v[7] != 4.0/3.0 {
		t.Errorf("packets/s = %v", v[7])
	}
}

func TestFeatureVectorSinglePacketNoDivZero(t *testing.T) {
	f := buildFlow(t, 1, packet.ProtoUDP)
	v := FromFlow(f).FeatureVector()
	if v[7] != 0 {
		t.Errorf("rate for zero-duration flow = %v, want 0", v[7])
	}
}

func TestFromFlows(t *testing.T) {
	flows := []*flow.Flow{buildFlow(t, 2, packet.ProtoTCP), buildFlow(t, 3, packet.ProtoUDP)}
	recs := FromFlows(flows)
	if len(recs) != 2 || recs[0].Packets != 2 || recs[1].Packets != 3 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestFeatureNamesMatchLength(t *testing.T) {
	if len(FeatureNames) != NumFeatures {
		t.Fatal("FeatureNames length mismatch")
	}
}

func TestFullVectorLayout(t *testing.T) {
	f := buildFlow(t, 3, packet.ProtoTCP)
	r := FromFlow(f)
	full := r.FullVector()
	if len(full) != NumFullFields {
		t.Fatalf("full vector len %d, want %d", len(full), NumFullFields)
	}
	// IP octets scaled to [0,1].
	for i := 0; i < 8; i++ {
		if full[i] < 0 || full[i] > 1 {
			t.Fatalf("octet %d = %v out of [0,1]", i, full[i])
		}
	}
	// Ports scaled.
	if full[8] < 0 || full[8] > 1 || full[9] < 0 || full[9] > 1 {
		t.Fatalf("port fields out of range: %v %v", full[8], full[9])
	}
	// The tail must equal FeatureVector.
	want := r.FeatureVector()
	got := full[NumFullFields-NumFeatures:]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("feature tail diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestClassifierFeaturesFromFullRoundTrip(t *testing.T) {
	f := buildFlow(t, 4, packet.ProtoUDP)
	r := FromFlow(f)
	full := r.FullVector()
	sliced := ClassifierFeaturesFromFull(full)
	want := r.FeatureVector()
	if len(sliced) != len(want) {
		t.Fatalf("len %d vs %d", len(sliced), len(want))
	}
	for i := range want {
		if sliced[i] != want[i] {
			t.Fatalf("feature %d: %v vs %v", i, sliced[i], want[i])
		}
	}
}

func TestFullVectorExposesIdentifiersFeatureVectorHides(t *testing.T) {
	// Two flows differing only in addresses must have identical
	// classification features but different full vectors.
	var b packet.Builder
	mk := func(ip [4]byte) *flow.Flow {
		tbl := flow.NewTable()
		hdr := packet.IPv4{TTL: 64, SrcIP: ip, DstIP: [4]byte{8, 8, 8, 8}}
		for i := 0; i < 3; i++ {
			ts := t0.Add(time.Duration(i) * time.Second)
			tbl.Add(b.BuildTCP(ts, hdr, packet.TCP{SrcPort: 40000, DstPort: 443, Flags: packet.FlagACK}, make([]byte, 80)))
		}
		return tbl.Flows()[0]
	}
	ra := FromFlow(mk([4]byte{10, 0, 0, 1}))
	rb := FromFlow(mk([4]byte{172, 16, 5, 9}))
	fa, fb := ra.FeatureVector(), rb.FeatureVector()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("classification features leak addresses at %d", i)
		}
	}
	fullA, fullB := ra.FullVector(), rb.FullVector()
	same := true
	for i := 0; i < 8; i++ {
		if fullA[i] != fullB[i] {
			same = false
		}
	}
	if same {
		t.Fatal("full vectors should differ in the address octets")
	}
}
