package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpoint format versions. Version 1 is the original weights-only
// format written by SaveParams; Version 2 adds the mid-run training
// state (optimizer moments, EMA shadow, RNG position, loss curve,
// step counter) written by SaveTraining. SaveParams keeps emitting
// Version 1 so weight files stay readable by older loaders, and
// LoadParams accepts both versions (ignoring any training state).
const (
	versionParams  = 1
	versionTrainer = 2
)

// paramBlob is the on-disk form of one parameter tensor.
type paramBlob struct {
	Shape []int
	Data  []float32
}

// TrainerState is the serializable mid-run training state carried by a
// Version-2 checkpoint alongside the parameter values. It captures
// everything a step-wise training loop touches beyond the weights
// themselves, so a killed run can resume bit-identically: the Adam
// update count and moment estimates (one slice per parameter, in
// checkpoint param order), the EMA shadow weights (nil when EMA is
// disabled), the minibatch RNG position, the loss curve so far, and
// the number of completed optimizer steps.
type TrainerState struct {
	Step     int
	AdamStep int
	AdamM    [][]float32
	AdamV    [][]float32
	EMA      [][]float32
	RNG      [4]uint64
	Losses   []float64
}

// checkpoint is the on-disk form of a parameter list, optionally with
// mid-run training state (Version 2).
type checkpoint struct {
	Version int
	Params  []paramBlob
	Train   *TrainerState
}

// SaveParams writes the parameter values (not gradients) to w in a
// stable binary format. The parameter order defines the layout; load
// into a model built with the same constructor arguments.
func SaveParams(w io.Writer, params []*V) error {
	ck := checkpoint{Version: versionParams}
	for _, p := range params {
		ck.Params = append(ck.Params, paramBlob{Shape: p.X.Shape, Data: p.X.Data})
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadParams reads a checkpoint written by SaveParams or SaveTraining
// into params, ignoring any training state. Every parameter's shape
// must match.
func LoadParams(r io.Reader, params []*V) error {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if ck.Version != versionParams && ck.Version != versionTrainer {
		return fmt.Errorf("nn: unsupported checkpoint version %d", ck.Version)
	}
	return installParams(ck.Params, params)
}

// SaveTraining writes params plus mid-run trainer state as a Version-2
// checkpoint. The AdamM/AdamV/EMA slices in st must align with params
// element-for-element.
func SaveTraining(w io.Writer, params []*V, st *TrainerState) error {
	if st == nil {
		return fmt.Errorf("nn: SaveTraining needs trainer state")
	}
	ck := checkpoint{Version: versionTrainer, Train: st}
	for _, p := range params {
		ck.Params = append(ck.Params, paramBlob{Shape: p.X.Shape, Data: p.X.Data})
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadTraining reads a Version-2 checkpoint written by SaveTraining:
// the weights are installed into params and the training state is
// returned. Weights-only (Version 1) checkpoints are rejected — they
// carry no state to resume from.
func LoadTraining(r io.Reader, params []*V) (*TrainerState, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if ck.Version != versionTrainer {
		return nil, fmt.Errorf("nn: checkpoint version %d has no training state (want %d)", ck.Version, versionTrainer)
	}
	if ck.Train == nil {
		return nil, fmt.Errorf("nn: version-%d checkpoint is missing its training state", versionTrainer)
	}
	if err := installParams(ck.Params, params); err != nil {
		return nil, err
	}
	return ck.Train, nil
}

// installParams shape-checks blobs against params and copies the
// values in.
func installParams(blobs []paramBlob, params []*V) error {
	if len(blobs) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", len(blobs), len(params))
	}
	for i, blob := range blobs {
		p := params[i]
		if len(blob.Data) != len(p.X.Data) {
			return fmt.Errorf("nn: param %d has %d values, model wants %d", i, len(blob.Data), len(p.X.Data))
		}
		if len(blob.Shape) != len(p.X.Shape) {
			return fmt.Errorf("nn: param %d shape %v, model wants %v", i, blob.Shape, p.X.Shape)
		}
		for j := range blob.Shape {
			if blob.Shape[j] != p.X.Shape[j] {
				return fmt.Errorf("nn: param %d shape %v, model wants %v", i, blob.Shape, p.X.Shape)
			}
		}
		copy(p.X.Data, blob.Data)
	}
	return nil
}
