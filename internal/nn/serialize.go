package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// paramBlob is the on-disk form of one parameter tensor.
type paramBlob struct {
	Shape []int
	Data  []float32
}

// checkpoint is the on-disk form of a parameter list.
type checkpoint struct {
	Version int
	Params  []paramBlob
}

// SaveParams writes the parameter values (not gradients) to w in a
// stable binary format. The parameter order defines the layout; load
// into a model built with the same constructor arguments.
func SaveParams(w io.Writer, params []*V) error {
	ck := checkpoint{Version: 1}
	for _, p := range params {
		ck.Params = append(ck.Params, paramBlob{Shape: p.X.Shape, Data: p.X.Data})
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadParams reads a checkpoint written by SaveParams into params.
// Every parameter's shape must match.
func LoadParams(r io.Reader, params []*V) error {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if ck.Version != 1 {
		return fmt.Errorf("nn: unsupported checkpoint version %d", ck.Version)
	}
	if len(ck.Params) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", len(ck.Params), len(params))
	}
	for i, blob := range ck.Params {
		p := params[i]
		if len(blob.Data) != len(p.X.Data) {
			return fmt.Errorf("nn: param %d has %d values, model wants %d", i, len(blob.Data), len(p.X.Data))
		}
		if len(blob.Shape) != len(p.X.Shape) {
			return fmt.Errorf("nn: param %d shape %v, model wants %v", i, blob.Shape, p.X.Shape)
		}
		for j := range blob.Shape {
			if blob.Shape[j] != p.X.Shape[j] {
				return fmt.Errorf("nn: param %d shape %v, model wants %v", i, blob.Shape, p.X.Shape)
			}
		}
		copy(p.X.Data, blob.Data)
	}
	return nil
}
