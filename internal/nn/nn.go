// Package nn is a small reverse-mode automatic-differentiation engine
// and neural-network toolkit built on the tensor package. It provides
// exactly the operations the diffusion denoiser, LoRA adapters,
// ControlNet branch and GAN baseline need: linear and convolutional
// layers, pointwise activations, layer normalization, embeddings,
// nearest-neighbor upsampling, and reduction losses — each with a
// hand-written, gradient-checked backward.
//
// Usage follows the tape pattern: ops record their backward closures
// onto a Tape; Backward(loss) seeds the loss gradient and unwinds the
// tape. Parameters are persistent Vs whose gradients accumulate across
// the step until an optimizer consumes them.
package nn

import (
	"fmt"

	"trafficdiff/internal/tensor"
)

// V is a tensor value in the autodiff graph with its gradient.
type V struct {
	X *tensor.Tensor
	G *tensor.Tensor
}

// NewV wraps x as a graph value with a zero gradient.
func NewV(x *tensor.Tensor) *V {
	return &V{X: x, G: tensor.New(x.Shape...)}
}

// Param allocates a parameter with the given shape.
func Param(shape ...int) *V { return NewV(tensor.New(shape...)) }

// ZeroGrad clears the gradient.
func (v *V) ZeroGrad() { v.G.Zero() }

// Tape records backward closures in execution order. With reuse
// enabled (EnableReuse) it also owns an arena of output tensors:
// training loops whose shapes repeat every step can run Recycle()
// after the optimizer step to return all tape-allocated values to the
// pool instead of garbage-collecting them.
type Tape struct {
	steps []func()

	reuse bool
	free  map[int][]*V // recycled values keyed by element count
	taken []*V         // values handed out since the last Recycle
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// EnableReuse turns on the tape's output arena. Callers that enable it
// must call Recycle only when no value produced by this tape since the
// last Recycle is referenced anymore (typically right after the
// optimizer step consumes the gradients).
func (t *Tape) EnableReuse() {
	t.reuse = true
	if t.free == nil {
		t.free = make(map[int][]*V)
	}
}

// alloc returns a zeroed graph value of the given shape, reusing a
// recycled buffer of the same element count when the arena is on.
func (t *Tape) alloc(shape ...int) *V {
	if !t.reuse {
		return NewV(tensor.New(shape...))
	}
	n := 1
	for _, s := range shape {
		n *= s
	}
	if vs := t.free[n]; len(vs) > 0 {
		base := vs[len(vs)-1]
		t.free[n] = vs[:len(vs)-1]
		base.X.Zero()
		base.G.Zero()
		v := &V{X: base.X.Reshape(shape...), G: base.G.Reshape(shape...)}
		t.taken = append(t.taken, v)
		return v
	}
	v := NewV(tensor.New(shape...))
	t.taken = append(t.taken, v)
	return v
}

// cloneV allocates via the arena and copies src into the value.
func (t *Tape) cloneV(src *tensor.Tensor) *V {
	v := t.alloc(src.Shape...)
	copy(v.X.Data, src.Data)
	return v
}

// adopt wraps a tensor allocated elsewhere (e.g. by a fused kernel) as
// a tape value so its storage still enters the arena on Recycle.
func (t *Tape) adopt(x *tensor.Tensor) *V {
	v := NewV(x)
	if t.reuse {
		t.taken = append(t.taken, v)
	}
	return v
}

// Recycle returns every value the tape allocated since the last
// Recycle to the arena. No-op unless EnableReuse was called.
func (t *Tape) Recycle() {
	if !t.reuse {
		return
	}
	for _, v := range t.taken {
		n := v.X.Len()
		t.free[n] = append(t.free[n], v)
	}
	t.taken = t.taken[:0]
}

// record appends a backward closure.
func (t *Tape) record(f func()) { t.steps = append(t.steps, f) }

// Backward seeds d(loss)/d(loss)=1 and runs all recorded closures in
// reverse. loss must be scalar (one element).
func (t *Tape) Backward(loss *V) {
	if loss.X.Len() != 1 {
		panic(fmt.Sprintf("nn: Backward needs a scalar loss, got shape %v", loss.X.Shape))
	}
	loss.G.Data[0] = 1
	for i := len(t.steps) - 1; i >= 0; i-- {
		t.steps[i]()
	}
	t.steps = t.steps[:0]
}

// Reset drops recorded steps without running them (e.g. after a
// forward-only pass).
func (t *Tape) Reset() { t.steps = t.steps[:0] }

// Add returns a+b (same shapes).
func (t *Tape) Add(a, b *V) *V {
	if !a.X.SameShape(b.X) {
		panic("nn: Add shape mismatch")
	}
	out := t.cloneV(a.X)
	out.X.AddInto(b.X)
	t.record(func() {
		a.G.AddInto(out.G)
		b.G.AddInto(out.G)
	})
	return out
}

// Sub returns a-b.
func (t *Tape) Sub(a, b *V) *V {
	if !a.X.SameShape(b.X) {
		panic("nn: Sub shape mismatch")
	}
	out := t.cloneV(a.X)
	for i, v := range b.X.Data {
		out.X.Data[i] -= v
	}
	t.record(func() {
		a.G.AddInto(out.G)
		for i, g := range out.G.Data {
			b.G.Data[i] -= g
		}
	})
	return out
}

// Mul returns the elementwise product.
func (t *Tape) Mul(a, b *V) *V {
	if !a.X.SameShape(b.X) {
		panic("nn: Mul shape mismatch")
	}
	out := t.alloc(a.X.Shape...)
	for i := range out.X.Data {
		out.X.Data[i] = a.X.Data[i] * b.X.Data[i]
	}
	t.record(func() {
		for i, g := range out.G.Data {
			a.G.Data[i] += g * b.X.Data[i]
			b.G.Data[i] += g * a.X.Data[i]
		}
	})
	return out
}

// Scale returns s*a for a constant s.
func (t *Tape) Scale(a *V, s float32) *V {
	out := t.alloc(a.X.Shape...)
	for i, v := range a.X.Data {
		out.X.Data[i] = s * v
	}
	t.record(func() {
		for i, g := range out.G.Data {
			a.G.Data[i] += s * g
		}
	})
	return out
}

// AddConst returns a+c for a constant c.
func (t *Tape) AddConst(a *V, c float32) *V {
	out := t.alloc(a.X.Shape...)
	for i, v := range a.X.Data {
		out.X.Data[i] = v + c
	}
	t.record(func() { a.G.AddInto(out.G) })
	return out
}

// Reshape returns a view of a with a new shape. The gradient flows
// back through the same view.
func (t *Tape) Reshape(a *V, shape ...int) *V {
	out := &V{X: a.X.Reshape(shape...), G: a.G.Reshape(shape...)}
	return out // shared storage: no tape step needed
}

// Concat0 concatenates along axis 0 (rows) for 2-D values with equal
// column counts.
func (t *Tape) Concat0(a, b *V) *V {
	if len(a.X.Shape) != 2 || len(b.X.Shape) != 2 || a.X.Shape[1] != b.X.Shape[1] {
		panic("nn: Concat0 needs 2-D inputs with equal columns")
	}
	rows := a.X.Shape[0] + b.X.Shape[0]
	out := t.alloc(rows, a.X.Shape[1])
	copy(out.X.Data, a.X.Data)
	copy(out.X.Data[len(a.X.Data):], b.X.Data)
	t.record(func() {
		for i := range a.G.Data {
			a.G.Data[i] += out.G.Data[i]
		}
		off := len(a.G.Data)
		for i := range b.G.Data {
			b.G.Data[i] += out.G.Data[off+i]
		}
	})
	return out
}

// MatMul returns a·b for a [m,k], b [k,n].
func (t *Tape) MatMul(a, b *V) *V {
	out := t.alloc(a.X.Shape[0], b.X.Shape[1])
	tensor.MatMulInto(out.X, a.X, b.X)
	t.record(func() {
		// da = dout·bᵀ ; db = aᵀ·dout
		a.G.AddInto(tensor.MatMulABT(out.G, b.X))
		b.G.AddInto(tensor.MatMulATB(a.X, out.G))
	})
	return out
}

// Linear computes x·wᵀ + bias for x [N,in], w [out,in], bias [out].
func (t *Tape) Linear(x, w, bias *V) *V {
	n, in := x.X.Shape[0], x.X.Shape[1]
	outDim := w.X.Shape[0]
	if w.X.Shape[1] != in || bias.X.Shape[0] != outDim {
		panic(fmt.Sprintf("nn: Linear shapes x%v w%v b%v", x.X.Shape, w.X.Shape, bias.X.Shape))
	}
	out := t.alloc(n, outDim)
	tensor.MatMulABTInto(out.X, x.X, w.X)
	for r := 0; r < n; r++ {
		row := out.X.Data[r*outDim:]
		for o := 0; o < outDim; o++ {
			row[o] += bias.X.Data[o]
		}
	}
	t.record(func() {
		// dx = dout·w ; dw = doutᵀ·x ; db = column sums of dout
		x.G.AddInto(tensor.MatMul(out.G, w.X))
		w.G.AddInto(tensor.MatMulATB(out.G, x.X))
		for r := 0; r < n; r++ {
			row := out.G.Data[r*outDim:]
			for o := 0; o < outDim; o++ {
				bias.G.Data[o] += row[o]
			}
		}
	})
	return out
}

// AddRowBroadcast adds row vector b [D] to every row of a [N,D].
func (t *Tape) AddRowBroadcast(a, b *V) *V {
	n, d := a.X.Shape[0], a.X.Shape[1]
	if b.X.Shape[0] != d {
		panic("nn: AddRowBroadcast width mismatch")
	}
	out := t.cloneV(a.X)
	for r := 0; r < n; r++ {
		row := out.X.Data[r*d:]
		for j := 0; j < d; j++ {
			row[j] += b.X.Data[j]
		}
	}
	t.record(func() {
		a.G.AddInto(out.G)
		for r := 0; r < n; r++ {
			row := out.G.Data[r*d:]
			for j := 0; j < d; j++ {
				b.G.Data[j] += row[j]
			}
		}
	})
	return out
}

// AddChannelBroadcast adds per-sample channel vector b [N,C] across
// the spatial dims of a [N,C,H,W] (FiLM-style conditioning injection).
func (t *Tape) AddChannelBroadcast(a, b *V) *V {
	n, c := a.X.Shape[0], a.X.Shape[1]
	spatial := a.X.Shape[2] * a.X.Shape[3]
	if b.X.Shape[0] != n || b.X.Shape[1] != c {
		panic("nn: AddChannelBroadcast shape mismatch")
	}
	out := t.cloneV(a.X)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			bv := b.X.Data[i*c+ch]
			seg := out.X.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
			for j := range seg {
				seg[j] += bv
			}
		}
	}
	t.record(func() {
		a.G.AddInto(out.G)
		for i := 0; i < n; i++ {
			for ch := 0; ch < c; ch++ {
				seg := out.G.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
				var sum float32
				for _, g := range seg {
					sum += g
				}
				b.G.Data[i*c+ch] += sum
			}
		}
	})
	return out
}
