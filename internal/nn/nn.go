// Package nn is a small reverse-mode automatic-differentiation engine
// and neural-network toolkit built on the tensor package. It provides
// exactly the operations the diffusion denoiser, LoRA adapters,
// ControlNet branch and GAN baseline need: linear and convolutional
// layers, pointwise activations, layer normalization, embeddings,
// nearest-neighbor upsampling, and reduction losses — each with a
// hand-written, gradient-checked backward.
//
// Usage follows the tape pattern: ops record their backward closures
// onto a Tape; Backward(loss) seeds the loss gradient and unwinds the
// tape. Parameters are persistent Vs whose gradients accumulate across
// the step until an optimizer consumes them.
package nn

import (
	"fmt"

	"trafficdiff/internal/tensor"
)

// V is a tensor value in the autodiff graph with its gradient.
type V struct {
	X *tensor.Tensor
	G *tensor.Tensor
}

// NewV wraps x as a graph value with a zero gradient.
func NewV(x *tensor.Tensor) *V {
	//tracelint:allow hotalloc — arena miss: hot callers hit Tape.alloc's free list in steady state
	return &V{X: x, G: tensor.New(x.Shape...)}
}

// Param allocates a parameter with the given shape.
func Param(shape ...int) *V { return NewV(tensor.New(shape...)) }

// ZeroGrad clears the gradient.
func (v *V) ZeroGrad() { v.G.Zero() }

// Tape records backward closures in execution order. With reuse
// enabled (EnableReuse) it also owns an arena of output tensors:
// training loops whose shapes repeat every step can run Recycle()
// after the optimizer step to return all tape-allocated values to the
// pool instead of garbage-collecting them. With no-grad mode on
// (SetNoGrad) ops compute values only — no backward closures are
// built, which makes a reuse-enabled tape's steady state essentially
// allocation-free for inference loops whose shapes repeat every step
// (the batched diffusion sampler).
type Tape struct {
	steps []func()

	nograd bool

	reuse bool
	free  map[int][]*V // recycled values keyed by element count
	taken []*V         // values handed out since the last Recycle
	// scratch float32 buffers (activation caches like SiLU's sigmoid
	// values) recycle through the same lifecycle as values.
	sfree  map[int][][]float32
	staken [][]float32
	// view headers (Reshape results) recycle likewise: a reshape
	// shares storage, so only its V/Tensor headers need pooling.
	vfree  []*viewV
	vtaken []*viewV
}

// viewV owns the headers of one pooled Reshape result: the V plus the
// two Tensor headers it points at. The storage they view belongs to
// the reshaped value.
type viewV struct {
	v      V
	xt, gt tensor.Tensor
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// EnableReuse turns on the tape's output arena. Callers that enable it
// must call Recycle only when no value produced by this tape since the
// last Recycle is referenced anymore (typically right after the
// optimizer step consumes the gradients).
func (t *Tape) EnableReuse() {
	t.reuse = true
	if t.free == nil {
		t.free = make(map[int][]*V)
		t.sfree = make(map[int][][]float32)
	}
}

// SetNoGrad toggles forward-only mode: while on, ops skip recording
// backward closures (and skip building the captures they would need),
// so Backward must not be called on values produced under it. Forward
// values are unaffected — a no-grad pass is bit-identical to a normal
// one. Samplers flip this on once and keep the tape for the whole
// reverse process.
func (t *Tape) SetNoGrad(on bool) { t.nograd = on }

// grad reports whether ops should record backward closures. Each op
// guards its closure construction with this so no-grad passes do not
// pay the closure allocations.
func (t *Tape) grad() bool { return !t.nograd }

// alloc returns a zeroed graph value of the given shape, reusing a
// recycled buffer of the same element count when the arena is on. When
// the recycled buffer's shape already matches (the steady state of a
// loop with fixed shapes), the value is handed back as-is with no new
// header allocations.
func (t *Tape) alloc(shape ...int) *V {
	if !t.reuse {
		return NewV(tensor.New(shape...))
	}
	n := 1
	for _, s := range shape {
		n *= s
	}
	if vs := t.free[n]; len(vs) > 0 {
		base := vs[len(vs)-1]
		t.free[n] = vs[:len(vs)-1]
		base.X.Zero()
		base.G.Zero()
		v := base
		if !shapeEq(base.X.Shape, shape) {
			//tracelint:allow hotalloc — header-only rewrap when a reused buffer changes shape; data is shared
			v = &V{X: base.X.Reshape(shape...), G: base.G.Reshape(shape...)}
		}
		//tracelint:allow hotalloc — bookkeeping append: taken reaches steady capacity after the first step
		t.taken = append(t.taken, v)
		return v
	}
	//tracelint:allow hotalloc — arena miss: first step only, recycled afterwards
	v := NewV(tensor.New(shape...))
	//tracelint:allow hotalloc — bookkeeping append: taken reaches steady capacity after the first step
	t.taken = append(t.taken, v)
	return v
}

// shapeEq reports whether a tensor shape equals the requested dims.
func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scratch returns a float32 buffer of length n from the arena (or a
// fresh one when reuse is off). The caller must fully overwrite it —
// recycled buffers keep their old contents.
func (t *Tape) scratch(n int) []float32 {
	if !t.reuse {
		return make([]float32, n)
	}
	if bs := t.sfree[n]; len(bs) > 0 {
		b := bs[len(bs)-1]
		t.sfree[n] = bs[:len(bs)-1]
		t.staken = append(t.staken, b)
		return b
	}
	b := make([]float32, n)
	t.staken = append(t.staken, b)
	return b
}

// cloneV allocates via the arena and copies src into the value.
func (t *Tape) cloneV(src *tensor.Tensor) *V {
	v := t.alloc(src.Shape...)
	copy(v.X.Data, src.Data)
	return v
}

// Input copies x into a tape-owned value: the graph node for a
// constant network input (a control image, a fixed embedding). Unlike
// NewV it participates in the arena, so loops that feed the same-shape
// input every step stop allocating for it after the first step.
func (t *Tape) Input(x *tensor.Tensor) *V { return t.cloneV(x) }

// adopt wraps a tensor allocated elsewhere (e.g. by a fused kernel) as
// a tape value so its storage still enters the arena on Recycle.
func (t *Tape) adopt(x *tensor.Tensor) *V {
	v := NewV(x)
	if t.reuse {
		t.taken = append(t.taken, v)
	}
	return v
}

// Recycle returns every value the tape allocated since the last
// Recycle to the arena. No-op unless EnableReuse was called.
func (t *Tape) Recycle() {
	if !t.reuse {
		return
	}
	for _, v := range t.taken {
		n := v.X.Len()
		//tracelint:allow hotalloc — free-list append: capacity reaches steady state after the first cycle
		t.free[n] = append(t.free[n], v)
	}
	t.taken = t.taken[:0]
	for _, b := range t.staken {
		//tracelint:allow hotalloc — free-list append: capacity reaches steady state after the first cycle
		t.sfree[len(b)] = append(t.sfree[len(b)], b)
	}
	t.staken = t.staken[:0]
	//tracelint:allow hotalloc — free-list append: capacity reaches steady state after the first cycle
	t.vfree = append(t.vfree, t.vtaken...)
	t.vtaken = t.vtaken[:0]
}

// record appends a backward closure.
func (t *Tape) record(f func()) { t.steps = append(t.steps, f) }

// Backward seeds d(loss)/d(loss)=1 and runs all recorded closures in
// reverse. loss must be scalar (one element).
func (t *Tape) Backward(loss *V) {
	if loss.X.Len() != 1 {
		panic(fmt.Sprintf("nn: Backward needs a scalar loss, got shape %v", loss.X.Shape))
	}
	loss.G.Data[0] = 1
	for i := len(t.steps) - 1; i >= 0; i-- {
		t.steps[i]()
	}
	t.steps = t.steps[:0]
}

// Reset drops recorded steps without running them (e.g. after a
// forward-only pass).
func (t *Tape) Reset() { t.steps = t.steps[:0] }

// Add returns a+b (same shapes).
func (t *Tape) Add(a, b *V) *V {
	if !a.X.SameShape(b.X) {
		panic("nn: Add shape mismatch")
	}
	out := t.cloneV(a.X)
	out.X.AddInto(b.X)
	if t.grad() {
		t.record(func() {
			a.G.AddInto(out.G)
			b.G.AddInto(out.G)
		})
	}
	return out
}

// Sub returns a-b.
func (t *Tape) Sub(a, b *V) *V {
	if !a.X.SameShape(b.X) {
		panic("nn: Sub shape mismatch")
	}
	out := t.cloneV(a.X)
	for i, v := range b.X.Data {
		out.X.Data[i] -= v
	}
	if t.grad() {
		t.record(func() {
			a.G.AddInto(out.G)
			for i, g := range out.G.Data {
				b.G.Data[i] -= g
			}
		})
	}
	return out
}

// Mul returns the elementwise product.
func (t *Tape) Mul(a, b *V) *V {
	if !a.X.SameShape(b.X) {
		panic("nn: Mul shape mismatch")
	}
	out := t.alloc(a.X.Shape...)
	for i := range out.X.Data {
		out.X.Data[i] = a.X.Data[i] * b.X.Data[i]
	}
	if t.grad() {
		t.record(func() {
			for i, g := range out.G.Data {
				a.G.Data[i] += g * b.X.Data[i]
				b.G.Data[i] += g * a.X.Data[i]
			}
		})
	}
	return out
}

// Scale returns s*a for a constant s.
func (t *Tape) Scale(a *V, s float32) *V {
	out := t.alloc(a.X.Shape...)
	for i, v := range a.X.Data {
		out.X.Data[i] = s * v
	}
	if t.grad() {
		t.record(func() {
			for i, g := range out.G.Data {
				a.G.Data[i] += s * g
			}
		})
	}
	return out
}

// AddConst returns a+c for a constant c.
func (t *Tape) AddConst(a *V, c float32) *V {
	out := t.alloc(a.X.Shape...)
	for i, v := range a.X.Data {
		out.X.Data[i] = v + c
	}
	if t.grad() {
		t.record(func() { a.G.AddInto(out.G) })
	}
	return out
}

// Reshape returns a view of a with a new shape. The gradient flows
// back through the same view (shared storage: no tape step needed).
// With reuse on, the view's headers come from the tape's pool, so a
// steady-state loop pays no header allocations for reshapes.
func (t *Tape) Reshape(a *V, shape ...int) *V {
	if !t.reuse {
		return &V{X: a.X.Reshape(shape...), G: a.G.Reshape(shape...)}
	}
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != a.X.Len() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v", a.X.Shape, shape))
	}
	var w *viewV
	if len(t.vfree) > 0 {
		w = t.vfree[len(t.vfree)-1]
		t.vfree = t.vfree[:len(t.vfree)-1]
	} else {
		w = &viewV{}
	}
	t.vtaken = append(t.vtaken, w)
	// X and G share one shape slice; shapes are read-only by convention.
	w.xt.Shape = append(w.xt.Shape[:0], shape...)
	w.xt.Data = a.X.Data
	w.gt.Shape = w.xt.Shape
	w.gt.Data = a.G.Data
	w.v.X, w.v.G = &w.xt, &w.gt
	return &w.v
}

// Concat0 concatenates along axis 0 (rows) for 2-D values with equal
// column counts.
func (t *Tape) Concat0(a, b *V) *V {
	if len(a.X.Shape) != 2 || len(b.X.Shape) != 2 || a.X.Shape[1] != b.X.Shape[1] {
		panic("nn: Concat0 needs 2-D inputs with equal columns")
	}
	rows := a.X.Shape[0] + b.X.Shape[0]
	out := t.alloc(rows, a.X.Shape[1])
	copy(out.X.Data, a.X.Data)
	copy(out.X.Data[len(a.X.Data):], b.X.Data)
	if t.grad() {
		t.record(func() {
			for i := range a.G.Data {
				a.G.Data[i] += out.G.Data[i]
			}
			off := len(a.G.Data)
			for i := range b.G.Data {
				b.G.Data[i] += out.G.Data[off+i]
			}
		})
	}
	return out
}

// MatMul returns a·b for a [m,k], b [k,n].
func (t *Tape) MatMul(a, b *V) *V {
	out := t.alloc(a.X.Shape[0], b.X.Shape[1])
	tensor.MatMulInto(out.X, a.X, b.X)
	if t.grad() {
		t.record(func() {
			// da = dout·bᵀ ; db = aᵀ·dout
			a.G.AddInto(tensor.MatMulABT(out.G, b.X))
			b.G.AddInto(tensor.MatMulATB(a.X, out.G))
		})
	}
	return out
}

// Linear computes x·wᵀ + bias for x [N,in], w [out,in], bias [out].
func (t *Tape) Linear(x, w, bias *V) *V {
	n, in := x.X.Shape[0], x.X.Shape[1]
	outDim := w.X.Shape[0]
	if w.X.Shape[1] != in || bias.X.Shape[0] != outDim {
		panic(fmt.Sprintf("nn: Linear shapes x%v w%v b%v", x.X.Shape, w.X.Shape, bias.X.Shape))
	}
	out := t.alloc(n, outDim)
	tensor.MatMulABTInto(out.X, x.X, w.X)
	for r := 0; r < n; r++ {
		row := out.X.Data[r*outDim:]
		for o := 0; o < outDim; o++ {
			row[o] += bias.X.Data[o]
		}
	}
	if t.grad() {
		t.record(func() {
			// dx = dout·w ; dw = doutᵀ·x ; db = column sums of dout
			x.G.AddInto(tensor.MatMul(out.G, w.X))
			w.G.AddInto(tensor.MatMulATB(out.G, x.X))
			for r := 0; r < n; r++ {
				row := out.G.Data[r*outDim:]
				for o := 0; o < outDim; o++ {
					bias.G.Data[o] += row[o]
				}
			}
		})
	}
	return out
}

// AddRowBroadcast adds row vector b [D] to every row of a [N,D].
func (t *Tape) AddRowBroadcast(a, b *V) *V {
	n, d := a.X.Shape[0], a.X.Shape[1]
	if b.X.Shape[0] != d {
		panic("nn: AddRowBroadcast width mismatch")
	}
	out := t.cloneV(a.X)
	for r := 0; r < n; r++ {
		row := out.X.Data[r*d:]
		for j := 0; j < d; j++ {
			row[j] += b.X.Data[j]
		}
	}
	if t.grad() {
		t.record(func() {
			a.G.AddInto(out.G)
			for r := 0; r < n; r++ {
				row := out.G.Data[r*d:]
				for j := 0; j < d; j++ {
					b.G.Data[j] += row[j]
				}
			}
		})
	}
	return out
}

// AddChannelBroadcast adds per-sample channel vector b [N,C] across
// the spatial dims of a [N,C,H,W] (FiLM-style conditioning injection).
func (t *Tape) AddChannelBroadcast(a, b *V) *V {
	n, c := a.X.Shape[0], a.X.Shape[1]
	spatial := a.X.Shape[2] * a.X.Shape[3]
	if b.X.Shape[0] != n || b.X.Shape[1] != c {
		panic("nn: AddChannelBroadcast shape mismatch")
	}
	out := t.cloneV(a.X)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			bv := b.X.Data[i*c+ch]
			seg := out.X.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
			for j := range seg {
				seg[j] += bv
			}
		}
	}
	if t.grad() {
		t.record(func() {
			a.G.AddInto(out.G)
			for i := 0; i < n; i++ {
				for ch := 0; ch < c; ch++ {
					seg := out.G.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
					var sum float32
					for _, g := range seg {
						sum += g
					}
					b.G.Data[i*c+ch] += sum
				}
			}
		})
	}
	return out
}
