package nn

import (
	"fmt"
	"math"
)

// Adam implements the Adam optimizer with optional gradient clipping
// by global norm.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	// ClipNorm clips the global gradient norm when > 0.
	ClipNorm float64

	params []*V
	m, v   [][]float32
	step   int
}

// NewAdam creates an optimizer over params with standard defaults
// (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr float64, params []*V) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, make([]float32, len(p.X.Data)))
		a.v = append(a.v, make([]float32, len(p.X.Data)))
	}
	return a
}

// Params returns the parameter set being optimized.
func (a *Adam) Params() []*V { return a.params }

// GradNorm returns the current global gradient L2 norm.
func (a *Adam) GradNorm() float64 {
	var sq float64
	for _, p := range a.params {
		for _, g := range p.G.Data {
			sq += float64(g) * float64(g)
		}
	}
	return math.Sqrt(sq)
}

// Step applies one update from the accumulated gradients and zeroes
// them.
func (a *Adam) Step() {
	a.step++
	scale := 1.0
	if a.ClipNorm > 0 {
		if norm := a.GradNorm(); norm > a.ClipNorm {
			scale = a.ClipNorm / (norm + 1e-12)
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g64 := range p.G.Data {
			g := float64(g64) * scale
			m[j] = float32(a.Beta1*float64(m[j]) + (1-a.Beta1)*g)
			v[j] = float32(a.Beta2*float64(v[j]) + (1-a.Beta2)*g*g)
			mh := float64(m[j]) / bc1
			vh := float64(v[j]) / bc2
			p.X.Data[j] -= float32(a.LR * mh / (math.Sqrt(vh) + a.Eps))
		}
		p.ZeroGrad()
	}
}

// State exposes the optimizer's serializable state: the update count
// and the first/second moment estimates, one slice per parameter in
// Params order. The returned slices alias the optimizer's own storage;
// callers must treat them as read-only (checkpoint writers encode them
// synchronously, so no copy is needed).
func (a *Adam) State() (step int, m, v [][]float32) { return a.step, a.m, a.v }

// SetState restores state captured by State (possibly in another
// process) into this optimizer. The moment shapes must match the
// parameter set exactly; values are copied in.
func (a *Adam) SetState(step int, m, v [][]float32) error {
	if step < 0 {
		return fmt.Errorf("nn: negative Adam step %d", step)
	}
	if len(m) != len(a.params) || len(v) != len(a.params) {
		return fmt.Errorf("nn: Adam state has %d/%d moment slices, optimizer has %d params", len(m), len(v), len(a.params))
	}
	for i, p := range a.params {
		if len(m[i]) != len(p.X.Data) || len(v[i]) != len(p.X.Data) {
			return fmt.Errorf("nn: Adam state param %d has %d/%d moments, want %d", i, len(m[i]), len(v[i]), len(p.X.Data))
		}
	}
	a.step = step
	for i := range a.params {
		copy(a.m[i], m[i])
		copy(a.v[i], v[i])
	}
	return nil
}

// ZeroGrads clears all parameter gradients without stepping.
func (a *Adam) ZeroGrads() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// EMA maintains an exponential moving average of a parameter set —
// the standard DDPM practice of sampling from averaged weights, which
// smooths late-training oscillation.
type EMA struct {
	Decay  float64
	params []*V
	shadow [][]float32
}

// NewEMA snapshots params as the initial average.
func NewEMA(decay float64, params []*V) *EMA {
	e := &EMA{Decay: decay, params: params}
	for _, p := range params {
		e.shadow = append(e.shadow, append([]float32(nil), p.X.Data...))
	}
	return e
}

// Update folds the current parameter values into the average.
func (e *EMA) Update() {
	d := float32(e.Decay)
	for i, p := range e.params {
		s := e.shadow[i]
		for j, v := range p.X.Data {
			s[j] = d*s[j] + (1-d)*v
		}
	}
}

// Shadow exposes the averaged weights, one slice per parameter in the
// constructor's param order. The slices alias the EMA's own storage;
// callers must treat them as read-only.
func (e *EMA) Shadow() [][]float32 { return e.shadow }

// SetShadow restores averaged weights captured by Shadow. The shapes
// must match the parameter set exactly; values are copied in.
func (e *EMA) SetShadow(shadow [][]float32) error {
	if len(shadow) != len(e.params) {
		return fmt.Errorf("nn: EMA shadow has %d slices, want %d", len(shadow), len(e.params))
	}
	for i, p := range e.params {
		if len(shadow[i]) != len(p.X.Data) {
			return fmt.Errorf("nn: EMA shadow param %d has %d values, want %d", i, len(shadow[i]), len(p.X.Data))
		}
	}
	for i := range e.shadow {
		copy(e.shadow[i], shadow[i])
	}
	return nil
}

// Swap exchanges the live parameters with the averaged ones. Calling
// it twice restores the originals, so inference can run on the average
// and training resume afterwards.
func (e *EMA) Swap() {
	for i, p := range e.params {
		s := e.shadow[i]
		for j := range s {
			s[j], p.X.Data[j] = p.X.Data[j], s[j]
		}
	}
}
