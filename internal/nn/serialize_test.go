package nn

import (
	"bytes"
	"testing"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := stats.NewRNG(1)
	l1 := NewLinear(r, 4, 8)
	l2 := NewLinear(r, 8, 2)
	params := append(l1.Params(), l2.Params()...)

	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}

	// Fresh model with different init.
	r2 := stats.NewRNG(99)
	m1 := NewLinear(r2, 4, 8)
	m2 := NewLinear(r2, 8, 2)
	fresh := append(m1.Params(), m2.Params()...)
	if err := LoadParams(&buf, fresh); err != nil {
		t.Fatal(err)
	}
	for i := range params {
		for j := range params[i].X.Data {
			if params[i].X.Data[j] != fresh[i].X.Data[j] {
				t.Fatalf("param %d elem %d differs after load", i, j)
			}
		}
	}
}

func TestLoadRejectsMismatchedCount(t *testing.T) {
	r := stats.NewRNG(1)
	l := NewLinear(r, 2, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, l.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewLinear(r, 2, 2)
	tooMany := append(other.Params(), Param(1))
	if err := LoadParams(&buf, tooMany); err == nil {
		t.Fatal("expected count mismatch error")
	}
}

func TestLoadRejectsMismatchedShape(t *testing.T) {
	r := stats.NewRNG(1)
	l := NewLinear(r, 2, 3)
	var buf bytes.Buffer
	if err := SaveParams(&buf, l.Params()); err != nil {
		t.Fatal(err)
	}
	wrong := NewLinear(r, 3, 2)
	if err := LoadParams(&buf, wrong.Params()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if err := LoadParams(bytes.NewReader([]byte("not a checkpoint")), []*V{Param(1)}); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadPreservesZeroGradState(t *testing.T) {
	var buf bytes.Buffer
	p := NewV(tensor.FromSlice([]float32{1, 2, 3}, 3))
	if err := SaveParams(&buf, []*V{p}); err != nil {
		t.Fatal(err)
	}
	q := Param(3)
	q.G.Data[0] = 42 // stale gradient must survive untouched (values only)
	if err := LoadParams(&buf, []*V{q}); err != nil {
		t.Fatal(err)
	}
	if q.X.Data[2] != 3 {
		t.Fatal("values not loaded")
	}
	if q.G.Data[0] != 42 {
		t.Fatal("LoadParams should not touch gradients")
	}
}
