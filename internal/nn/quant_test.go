package nn

import (
	"math"
	"testing"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

func TestQuantizedLinearMatchesDequantizedFP32(t *testing.T) {
	r := stats.NewRNG(5)
	l := NewLinear(r, 96, 48)
	l.B.X.Randn(r, 0.3)
	x := tensor.New(4, 96).Randn(r, 1)

	l.Quantize()
	if !l.Quantized() {
		t.Fatal("Quantize did not mark the layer")
	}
	tp := NewTape()
	tp.SetNoGrad(true)
	got := l.Apply(tp, tp.Input(x))

	// Reference: fp32 Linear over the dequantized weights.
	ref := &LinearLayer{W: NewV(l.Q.Dequantize()), B: l.B}
	tpRef := NewTape()
	tpRef.SetNoGrad(true)
	want := ref.Apply(tpRef, tpRef.Input(x))

	for i := range want.X.Data {
		diff := math.Abs(float64(got.X.Data[i]) - float64(want.X.Data[i]))
		if diff > 1e-3 {
			t.Fatalf("element %d: quantized %v vs dequantized-fp32 %v", i, got.X.Data[i], want.X.Data[i])
		}
	}
}

func TestQuantizedLayerRefusesGradientTape(t *testing.T) {
	r := stats.NewRNG(6)
	l := NewLinear(r, 8, 4)
	l.Quantize()
	tp := NewTape() // gradient-recording by default
	defer func() {
		if recover() == nil {
			t.Fatal("quantized Apply on a gradient tape did not panic")
		}
	}()
	l.Apply(tp, tp.Input(tensor.New(2, 8)))
}

func TestQuantizedConvMatchesDequantizedFP32(t *testing.T) {
	r := stats.NewRNG(7)
	spec := tensor.ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}
	l := NewConv(r, spec)
	l.B.X.Randn(r, 0.3)
	x := tensor.New(2, 2, 8, 8).Randn(r, 1)

	l.Quantize()
	tp := NewTape()
	tp.SetNoGrad(true)
	got := l.Apply(tp, tp.Input(x))

	ref := &ConvLayer{W: NewV(l.Q.Dequantize()), B: l.B, Spec: spec}
	tpRef := NewTape()
	tpRef.SetNoGrad(true)
	want := ref.Apply(tpRef, tpRef.Input(x))

	for i := range want.X.Data {
		diff := math.Abs(float64(got.X.Data[i]) - float64(want.X.Data[i]))
		if diff > 1e-3 {
			t.Fatalf("element %d: quantized %v vs dequantized-fp32 %v", i, got.X.Data[i], want.X.Data[i])
		}
	}
}

func TestUnquantizedLayerUnchanged(t *testing.T) {
	// The default path must not change at all: Apply without Quantize
	// runs the fp32 kernel bit-for-bit.
	r := stats.NewRNG(8)
	l := NewLinear(r, 16, 8)
	x := tensor.New(3, 16).Randn(r, 1)
	tp1 := NewTape()
	direct := tp1.Linear(tp1.Input(x), l.W, l.B)
	tp2 := NewTape()
	viaApply := l.Apply(tp2, tp2.Input(x))
	for i := range direct.X.Data {
		if direct.X.Data[i] != viaApply.X.Data[i] {
			t.Fatalf("element %d: Apply %v != Linear %v", i, viaApply.X.Data[i], direct.X.Data[i])
		}
	}
}
