package nn

import (
	"math"
	"testing"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// checkGrad verifies analytic gradients of forward's scalar output
// with respect to every parameter in params via central differences.
func checkGrad(t *testing.T, params []*V, forward func(tp *Tape) *V) {
	t.Helper()
	tp := NewTape()
	loss := forward(tp)
	tp.Backward(loss)
	analytic := make([][]float32, len(params))
	for i, p := range params {
		analytic[i] = append([]float32(nil), p.G.Data...)
		p.ZeroGrad()
	}

	const eps = 1e-2
	for pi, p := range params {
		for j := range p.X.Data {
			orig := p.X.Data[j]
			p.X.Data[j] = orig + eps
			tp2 := NewTape()
			up := float64(forward(tp2).X.Data[0])
			tp2.Reset()
			p.X.Data[j] = orig - eps
			tp3 := NewTape()
			down := float64(forward(tp3).X.Data[0])
			tp3.Reset()
			p.X.Data[j] = orig
			num := (up - down) / (2 * eps)
			got := float64(analytic[pi][j])
			tol := 2e-2 * math.Max(1, math.Abs(num))
			if math.Abs(num-got) > tol {
				t.Fatalf("param %d elem %d: numeric %v vs analytic %v", pi, j, num, got)
			}
		}
	}
}

func TestGradAddSubMulScale(t *testing.T) {
	r := stats.NewRNG(1)
	a := NewV(tensor.New(2, 3).Randn(r, 1))
	b := NewV(tensor.New(2, 3).Randn(r, 1))
	checkGrad(t, []*V{a, b}, func(tp *Tape) *V {
		s := tp.Add(a, b)
		d := tp.Sub(s, b)
		m := tp.Mul(d, a)
		sc := tp.Scale(m, 1.7)
		return tp.Mean(tp.AddConst(sc, 0.3))
	})
}

func TestGradMatMul(t *testing.T) {
	r := stats.NewRNG(2)
	a := NewV(tensor.New(3, 4).Randn(r, 1))
	b := NewV(tensor.New(4, 2).Randn(r, 1))
	checkGrad(t, []*V{a, b}, func(tp *Tape) *V {
		return tp.Mean(tp.MatMul(a, b))
	})
}

func TestGradLinear(t *testing.T) {
	r := stats.NewRNG(3)
	x := NewV(tensor.New(2, 5).Randn(r, 1))
	w := NewV(tensor.New(3, 5).Randn(r, 1))
	b := NewV(tensor.New(3).Randn(r, 1))
	target := tensor.New(2, 3).Randn(r, 1)
	checkGrad(t, []*V{x, w, b}, func(tp *Tape) *V {
		return tp.MSE(tp.Linear(x, w, b), target)
	})
}

func TestGradActivations(t *testing.T) {
	r := stats.NewRNG(4)
	for name, act := range map[string]func(tp *Tape, v *V) *V{
		"silu":    func(tp *Tape, v *V) *V { return tp.SiLU(v) },
		"tanh":    func(tp *Tape, v *V) *V { return tp.Tanh(v) },
		"sigmoid": func(tp *Tape, v *V) *V { return tp.Sigmoid(v) },
		"lrelu":   func(tp *Tape, v *V) *V { return tp.LeakyReLU(v, 0.2) },
	} {
		x := NewV(tensor.New(2, 4).Randn(r, 1))
		// Shift away from the ReLU kink to keep numeric gradients clean.
		for i := range x.X.Data {
			if v := x.X.Data[i]; v > -0.05 && v < 0.05 {
				x.X.Data[i] = 0.3
			}
		}
		t.Run(name, func(t *testing.T) {
			checkGrad(t, []*V{x}, func(tp *Tape) *V { return tp.Mean(act(tp, x)) })
		})
	}
}

func TestGradLayerNorm(t *testing.T) {
	r := stats.NewRNG(5)
	x := NewV(tensor.New(3, 6).Randn(r, 1))
	gamma := NewV(tensor.New(6).Randn(r, 0.5))
	for i := range gamma.X.Data {
		gamma.X.Data[i] += 1
	}
	beta := NewV(tensor.New(6).Randn(r, 0.5))
	target := tensor.New(3, 6).Randn(r, 1)
	checkGrad(t, []*V{x, gamma, beta}, func(tp *Tape) *V {
		return tp.MSE(tp.LayerNorm(x, gamma, beta), target)
	})
}

func TestGradConv2D(t *testing.T) {
	r := stats.NewRNG(6)
	spec := tensor.ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := NewV(tensor.New(2, 2, 4, 4).Randn(r, 0.5))
	w := NewV(tensor.New(3, 18).Randn(r, 0.5))
	b := NewV(tensor.New(3).Randn(r, 0.5))
	checkGrad(t, []*V{x, w, b}, func(tp *Tape) *V {
		return tp.Mean(tp.Conv2D(x, w, b, spec))
	})
}

func TestGradStridedConv(t *testing.T) {
	r := stats.NewRNG(7)
	spec := tensor.ConvSpec{InC: 1, OutC: 2, KH: 3, KW: 3, Stride: 2, Pad: 1}
	x := NewV(tensor.New(1, 1, 6, 6).Randn(r, 0.5))
	w := NewV(tensor.New(2, 9).Randn(r, 0.5))
	b := NewV(tensor.New(2).Randn(r, 0.5))
	target := tensor.New(1, 2, 3, 3).Randn(r, 1)
	checkGrad(t, []*V{x, w, b}, func(tp *Tape) *V {
		return tp.MSE(tp.Conv2D(x, w, b, spec), target)
	})
}

func TestGradUpsample(t *testing.T) {
	r := stats.NewRNG(8)
	x := NewV(tensor.New(1, 2, 2, 3).Randn(r, 1))
	target := tensor.New(1, 2, 4, 6).Randn(r, 1)
	checkGrad(t, []*V{x}, func(tp *Tape) *V {
		return tp.MSE(tp.UpsampleNearest2x(x), target)
	})
}

func TestGradGather(t *testing.T) {
	r := stats.NewRNG(9)
	table := NewV(tensor.New(5, 4).Randn(r, 1))
	target := tensor.New(3, 4).Randn(r, 1)
	checkGrad(t, []*V{table}, func(tp *Tape) *V {
		return tp.MSE(tp.Gather(table, []int{1, 4, 1}), target)
	})
}

func TestGradBroadcasts(t *testing.T) {
	r := stats.NewRNG(10)
	a2 := NewV(tensor.New(3, 4).Randn(r, 1))
	brow := NewV(tensor.New(4).Randn(r, 1))
	checkGrad(t, []*V{a2, brow}, func(tp *Tape) *V {
		return tp.Mean(tp.AddRowBroadcast(a2, brow))
	})

	a4 := NewV(tensor.New(2, 3, 2, 2).Randn(r, 1))
	bch := NewV(tensor.New(2, 3).Randn(r, 1))
	target := tensor.New(2, 3, 2, 2).Randn(r, 1)
	checkGrad(t, []*V{a4, bch}, func(tp *Tape) *V {
		return tp.MSE(tp.AddChannelBroadcast(a4, bch), target)
	})
}

func TestGradConcat0(t *testing.T) {
	r := stats.NewRNG(11)
	a := NewV(tensor.New(2, 3).Randn(r, 1))
	b := NewV(tensor.New(1, 3).Randn(r, 1))
	target := tensor.New(3, 3).Randn(r, 1)
	checkGrad(t, []*V{a, b}, func(tp *Tape) *V {
		return tp.MSE(tp.Concat0(a, b), target)
	})
}

func TestGradBCEWithLogits(t *testing.T) {
	r := stats.NewRNG(12)
	logits := NewV(tensor.New(4, 1).Randn(r, 1))
	target := tensor.New(4, 1)
	target.Data[0], target.Data[2] = 1, 1
	checkGrad(t, []*V{logits}, func(tp *Tape) *V {
		return tp.BCEWithLogits(logits, target)
	})
}

func TestGradReshapeFlows(t *testing.T) {
	r := stats.NewRNG(13)
	x := NewV(tensor.New(2, 6).Randn(r, 1))
	target := tensor.New(3, 4).Randn(r, 1)
	checkGrad(t, []*V{x}, func(tp *Tape) *V {
		return tp.MSE(tp.Reshape(x, 3, 4), target)
	})
}

func TestGradTranspose2D(t *testing.T) {
	r := stats.NewRNG(14)
	x := NewV(tensor.New(3, 4).Randn(r, 1))
	target := tensor.New(4, 3).Randn(r, 1)
	checkGrad(t, []*V{x}, func(tp *Tape) *V {
		return tp.MSE(tp.Transpose2D(x), target)
	})
}

func TestGradSoftmaxRows(t *testing.T) {
	r := stats.NewRNG(15)
	x := NewV(tensor.New(3, 5).Randn(r, 1))
	target := tensor.New(3, 5).Randn(r, 0.3)
	checkGrad(t, []*V{x}, func(tp *Tape) *V {
		return tp.MSE(tp.SoftmaxRows(x), target)
	})
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := stats.NewRNG(16)
	x := NewV(tensor.New(4, 7).Randn(r, 3))
	tp := NewTape()
	y := tp.SoftmaxRows(x)
	tp.Reset()
	for i := 0; i < 4; i++ {
		var sum float32
		for j := 0; j < 7; j++ {
			sum += y.X.Data[i*7+j]
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestGradAttentionComposition(t *testing.T) {
	// softmax(Q·Kᵀ/√d)·V composed from tape ops must be differentiable
	// end to end.
	r := stats.NewRNG(17)
	q := NewV(tensor.New(4, 3).Randn(r, 0.5))
	k := NewV(tensor.New(4, 3).Randn(r, 0.5))
	v := NewV(tensor.New(4, 3).Randn(r, 0.5))
	target := tensor.New(4, 3).Randn(r, 0.5)
	checkGrad(t, []*V{q, k, v}, func(tp *Tape) *V {
		scores := tp.Scale(tp.MatMul(q, tp.Transpose2D(k)), float32(1/math.Sqrt(3)))
		return tp.MSE(tp.MatMul(tp.SoftmaxRows(scores), v), target)
	})
}

func TestGradSliceRows(t *testing.T) {
	r := stats.NewRNG(18)
	x := NewV(tensor.New(5, 3).Randn(r, 1))
	target := tensor.New(2, 3).Randn(r, 1)
	checkGrad(t, []*V{x}, func(tp *Tape) *V {
		return tp.MSE(tp.SliceRows(x, 1, 3), target)
	})
}
