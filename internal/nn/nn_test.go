package nn

import (
	"math"
	"testing"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

func TestBackwardRequiresScalar(t *testing.T) {
	tp := NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar loss")
		}
	}()
	tp.Backward(NewV(tensor.New(2)))
}

func TestTapeResetDropsSteps(t *testing.T) {
	tp := NewTape()
	a := NewV(tensor.FromSlice([]float32{1, 2}, 2))
	b := NewV(tensor.FromSlice([]float32{3, 4}, 2))
	_ = tp.Add(a, b)
	tp.Reset()
	if len(tp.steps) != 0 {
		t.Fatal("reset did not clear steps")
	}
}

func TestSinusoidalEmbeddingProperties(t *testing.T) {
	emb := SinusoidalEmbedding([]int{0, 5, 100}, 16)
	if emb.Shape[0] != 3 || emb.Shape[1] != 16 {
		t.Fatalf("shape = %v", emb.Shape)
	}
	// t=0: all sins are 0, all cos are 1.
	for j := 0; j < 8; j++ {
		if emb.Data[j] != 0 {
			t.Errorf("sin(0) feature %d = %v", j, emb.Data[j])
		}
		if emb.Data[8+j] != 1 {
			t.Errorf("cos(0) feature %d = %v", j, emb.Data[8+j])
		}
	}
	// Distinct timesteps produce distinct embeddings.
	same := true
	for j := 0; j < 16; j++ {
		if emb.Data[16+j] != emb.Data[32+j] {
			same = false
		}
	}
	if same {
		t.Error("timesteps 5 and 100 share an embedding")
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	// Minimize ||x - c||^2: Adam should converge near c.
	x := Param(4)
	c := tensor.FromSlice([]float32{1, -2, 3, 0.5}, 4)
	opt := NewAdam(0.1, []*V{x})
	for i := 0; i < 300; i++ {
		tp := NewTape()
		loss := tp.MSE(x, c)
		tp.Backward(loss)
		opt.Step()
	}
	for i := range c.Data {
		if math.Abs(float64(x.X.Data[i]-c.Data[i])) > 0.05 {
			t.Fatalf("x[%d] = %v, want %v", i, x.X.Data[i], c.Data[i])
		}
	}
}

func TestAdamClipNorm(t *testing.T) {
	x := Param(2)
	opt := NewAdam(0.1, []*V{x})
	opt.ClipNorm = 1
	x.G.Data[0], x.G.Data[1] = 30, 40 // norm 50
	if math.Abs(opt.GradNorm()-50) > 1e-6 {
		t.Fatalf("grad norm = %v", opt.GradNorm())
	}
	opt.Step()
	// After step gradients are zeroed.
	if x.G.Data[0] != 0 || x.G.Data[1] != 0 {
		t.Fatal("step did not zero gradients")
	}
	// First Adam step magnitude ≈ lr regardless, but must be finite and
	// in the descent direction.
	if !(x.X.Data[0] < 0 && x.X.Data[1] < 0) {
		t.Fatalf("descent direction wrong: %v", x.X.Data)
	}
}

func TestLinearLayerTrainsXORish(t *testing.T) {
	// Small 2-layer net learns a linearly nonseparable function,
	// proving end-to-end training through Linear+Tanh works.
	r := stats.NewRNG(42)
	l1 := NewLinear(r, 2, 8)
	l2 := NewLinear(r, 8, 1)
	params := append(l1.Params(), l2.Params()...)
	opt := NewAdam(0.05, params)

	xs := tensor.FromSlice([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	ys := tensor.FromSlice([]float32{0, 1, 1, 0}, 4, 1)
	var last float32
	for i := 0; i < 800; i++ {
		tp := NewTape()
		h := tp.Tanh(l1.Apply(tp, NewV(xs)))
		out := l2.Apply(tp, h)
		loss := tp.MSE(out, ys)
		last = loss.X.Data[0]
		tp.Backward(loss)
		opt.Step()
	}
	if last > 0.05 {
		t.Fatalf("XOR loss did not converge: %v", last)
	}
}

func TestNormLayerOutputStats(t *testing.T) {
	r := stats.NewRNG(1)
	norm := NewNorm(32)
	x := NewV(tensor.New(4, 32).Randn(r, 5))
	tp := NewTape()
	y := norm.Apply(tp, x)
	tp.Reset()
	for row := 0; row < 4; row++ {
		var sum, sq float64
		for j := 0; j < 32; j++ {
			v := float64(y.X.Data[row*32+j])
			sum += v
			sq += v * v
		}
		mean := sum / 32
		std := math.Sqrt(sq/32 - mean*mean)
		if math.Abs(mean) > 1e-4 || math.Abs(std-1) > 1e-2 {
			t.Fatalf("row %d: mean=%v std=%v", row, mean, std)
		}
	}
}

func TestEmbeddingLookup(t *testing.T) {
	r := stats.NewRNG(2)
	emb := NewEmbedding(r, 3, 4)
	tp := NewTape()
	out := emb.Apply(tp, []int{2, 0})
	tp.Reset()
	for j := 0; j < 4; j++ {
		if out.X.Data[j] != emb.Table.X.Data[2*4+j] {
			t.Fatal("row 0 should be table row 2")
		}
		if out.X.Data[4+j] != emb.Table.X.Data[j] {
			t.Fatal("row 1 should be table row 0")
		}
	}
}

func TestConvLayerShapes(t *testing.T) {
	r := stats.NewRNG(3)
	layer := NewConv(r, tensor.ConvSpec{InC: 1, OutC: 4, KH: 3, KW: 3, Stride: 2, Pad: 1})
	tp := NewTape()
	x := NewV(tensor.New(2, 1, 8, 8).Randn(r, 1))
	y := layer.Apply(tp, x)
	tp.Reset()
	want := []int{2, 4, 4, 4}
	for i, d := range want {
		if y.X.Shape[i] != d {
			t.Fatalf("shape = %v, want %v", y.X.Shape, want)
		}
	}
}

func TestTrainingLossIsFinite(t *testing.T) {
	// Failure-injection style check: even with aggressive LR the loss
	// must remain finite thanks to clipping.
	r := stats.NewRNG(4)
	l := NewLinear(r, 4, 4)
	opt := NewAdam(0.5, l.Params())
	opt.ClipNorm = 1
	x := tensor.New(8, 4).Randn(r, 10)
	y := tensor.New(8, 4).Randn(r, 10)
	for i := 0; i < 50; i++ {
		tp := NewTape()
		loss := tp.MSE(l.Apply(tp, NewV(x)), y)
		if math.IsNaN(float64(loss.X.Data[0])) || math.IsInf(float64(loss.X.Data[0]), 0) {
			t.Fatalf("loss became non-finite at step %d", i)
		}
		tp.Backward(loss)
		opt.Step()
	}
}

func TestEMAFollowsParameters(t *testing.T) {
	p := Param(2)
	p.X.Data[0], p.X.Data[1] = 1, -1
	ema := NewEMA(0.9, []*V{p})
	// Constant params: average stays equal.
	for i := 0; i < 10; i++ {
		ema.Update()
	}
	ema.Swap()
	if p.X.Data[0] != 1 || p.X.Data[1] != -1 {
		t.Fatalf("constant-param EMA drifted: %v", p.X.Data)
	}
	ema.Swap() // restore

	// Step change: the average lags behind, between old and new.
	p.X.Data[0] = 11
	ema.Update()
	ema.Swap()
	avg := p.X.Data[0]
	ema.Swap()
	if avg <= 1 || avg >= 11 {
		t.Fatalf("EMA after step change = %v, want in (1, 11)", avg)
	}
}

func TestEMASwapRoundTrip(t *testing.T) {
	p := Param(3)
	p.X.Data[0], p.X.Data[1], p.X.Data[2] = 1, 2, 3
	ema := NewEMA(0.5, []*V{p})
	p.X.Data[0] = 9
	ema.Update()
	before := append([]float32(nil), p.X.Data...)
	ema.Swap()
	ema.Swap()
	for i := range before {
		if p.X.Data[i] != before[i] {
			t.Fatal("double swap did not restore live weights")
		}
	}
}
