package nn

import (
	"math"

	"trafficdiff/internal/tensor"
)

// SiLU applies x*sigmoid(x) elementwise (the denoiser's activation).
func (t *Tape) SiLU(a *V) *V {
	out := t.alloc(a.X.Shape...)
	sig := t.scratch(len(a.X.Data))
	for i, v := range a.X.Data {
		s := float32(1 / (1 + math.Exp(-float64(v))))
		sig[i] = s
		out.X.Data[i] = v * s
	}
	if t.grad() {
		t.record(func() {
			for i, g := range out.G.Data {
				s := sig[i]
				v := a.X.Data[i]
				a.G.Data[i] += g * (s + v*s*(1-s))
			}
		})
	}
	return out
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *V) *V {
	out := t.alloc(a.X.Shape...)
	for i, v := range a.X.Data {
		out.X.Data[i] = float32(math.Tanh(float64(v)))
	}
	if t.grad() {
		t.record(func() {
			for i, g := range out.G.Data {
				y := out.X.Data[i]
				a.G.Data[i] += g * (1 - y*y)
			}
		})
	}
	return out
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *V) *V {
	out := t.alloc(a.X.Shape...)
	for i, v := range a.X.Data {
		out.X.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	if t.grad() {
		t.record(func() {
			for i, g := range out.G.Data {
				y := out.X.Data[i]
				a.G.Data[i] += g * y * (1 - y)
			}
		})
	}
	return out
}

// LeakyReLU applies max(x, alpha*x) elementwise (GAN discriminator).
func (t *Tape) LeakyReLU(a *V, alpha float32) *V {
	out := t.alloc(a.X.Shape...)
	for i, v := range a.X.Data {
		if v >= 0 {
			out.X.Data[i] = v
		} else {
			out.X.Data[i] = alpha * v
		}
	}
	if t.grad() {
		t.record(func() {
			for i, g := range out.G.Data {
				if a.X.Data[i] >= 0 {
					a.G.Data[i] += g
				} else {
					a.G.Data[i] += alpha * g
				}
			}
		})
	}
	return out
}

// LayerNorm normalizes each row of x [N,D] to zero mean / unit
// variance, then scales by gamma [D] and shifts by beta [D].
func (t *Tape) LayerNorm(x, gamma, beta *V) *V {
	n, d := x.X.Shape[0], x.X.Shape[1]
	const eps = 1e-5
	out := t.alloc(n, d)
	xhat := t.scratch(n * d)
	invStd := t.scratch(n)
	for r := 0; r < n; r++ {
		row := x.X.Data[r*d : (r+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var varsum float64
		for _, v := range row {
			dv := float64(v) - mean
			varsum += dv * dv
		}
		is := float32(1 / math.Sqrt(varsum/float64(d)+eps))
		invStd[r] = is
		for j, v := range row {
			h := (v - float32(mean)) * is
			xhat[r*d+j] = h
			out.X.Data[r*d+j] = h*gamma.X.Data[j] + beta.X.Data[j]
		}
	}
	if t.grad() {
		t.record(func() {
			for r := 0; r < n; r++ {
				var sumG, sumGH float32
				gRow := out.G.Data[r*d : (r+1)*d]
				for j, g := range gRow {
					gg := g * gamma.X.Data[j]
					sumG += gg
					sumGH += gg * xhat[r*d+j]
					gamma.G.Data[j] += g * xhat[r*d+j]
					beta.G.Data[j] += g
				}
				is := invStd[r]
				for j, g := range gRow {
					gg := g * gamma.X.Data[j]
					h := xhat[r*d+j]
					x.G.Data[r*d+j] += is * (gg - sumG/float32(d) - h*sumGH/float32(d))
				}
			}
		})
	}
	return out
}

// Conv2D convolves x [N,C,H,W] with weights w [OutC, C*KH*KW] and bias
// b [OutC] under spec s.
func (t *Tape) Conv2D(x, w, b *V, s tensor.ConvSpec) *V {
	n, h, wd := x.X.Shape[0], x.X.Shape[2], x.X.Shape[3]
	y, cols := tensor.Conv2D(x.X, w.X, b.X, s)
	out := t.adopt(y)
	if t.grad() {
		t.record(func() {
			dx, dw, db := tensor.Conv2DBackward(out.G, cols, w.X, s, n, h, wd)
			x.G.AddInto(dx)
			w.G.AddInto(dw)
			b.G.AddInto(db)
		})
	}
	return out
}

// UpsampleNearest2x doubles the spatial dims of x [N,C,H,W] by
// nearest-neighbor replication.
func (t *Tape) UpsampleNearest2x(x *V) *V {
	n, c, h, w := x.X.Shape[0], x.X.Shape[1], x.X.Shape[2], x.X.Shape[3]
	out := t.alloc(n, c, 2*h, 2*w)
	for i := 0; i < n*c; i++ {
		src := x.X.Data[i*h*w:]
		dst := out.X.Data[i*4*h*w:]
		for y := 0; y < 2*h; y++ {
			for xx := 0; xx < 2*w; xx++ {
				dst[y*2*w+xx] = src[(y/2)*w+xx/2]
			}
		}
	}
	if t.grad() {
		t.record(func() {
			for i := 0; i < n*c; i++ {
				dg := out.G.Data[i*4*h*w:]
				sg := x.G.Data[i*h*w:]
				for y := 0; y < 2*h; y++ {
					for xx := 0; xx < 2*w; xx++ {
						sg[(y/2)*w+xx/2] += dg[y*2*w+xx]
					}
				}
			}
		})
	}
	return out
}

// Gather selects rows of table [K,D] by index, producing [N,D]
// (embedding lookup). Gradients scatter-add back into the table.
func (t *Tape) Gather(table *V, idx []int) *V {
	d := table.X.Shape[1]
	out := t.alloc(len(idx), d)
	for r, id := range idx {
		copy(out.X.Data[r*d:(r+1)*d], table.X.Data[id*d:(id+1)*d])
	}
	if t.grad() {
		// Capture a copy: callers may reuse their index slice.
		ids := append([]int(nil), idx...)
		t.record(func() {
			for r, id := range ids {
				dst := table.G.Data[id*d : (id+1)*d]
				src := out.G.Data[r*d : (r+1)*d]
				for j := range dst {
					dst[j] += src[j]
				}
			}
		})
	}
	return out
}

// Mean reduces to a scalar mean.
func (t *Tape) Mean(a *V) *V {
	out := t.alloc(1)
	var sum float64
	for _, v := range a.X.Data {
		sum += float64(v)
	}
	n := float32(len(a.X.Data))
	out.X.Data[0] = float32(sum) / n
	if t.grad() {
		t.record(func() {
			g := out.G.Data[0] / n
			for i := range a.G.Data {
				a.G.Data[i] += g
			}
		})
	}
	return out
}

// MSE returns mean squared error between pred and target (target is a
// constant — no gradient flows into it).
func (t *Tape) MSE(pred *V, target *tensor.Tensor) *V {
	if !pred.X.SameShape(target) {
		panic("nn: MSE shape mismatch")
	}
	out := t.alloc(1)
	var sum float64
	for i, v := range pred.X.Data {
		d := float64(v - target.Data[i])
		sum += d * d
	}
	n := float32(len(pred.X.Data))
	out.X.Data[0] = float32(sum) / n
	if t.grad() {
		t.record(func() {
			g := out.G.Data[0] * 2 / n
			for i := range pred.G.Data {
				pred.G.Data[i] += g * (pred.X.Data[i] - target.Data[i])
			}
		})
	}
	return out
}

// BCEWithLogits returns the mean binary cross-entropy between logits
// and constant 0/1 targets, computed stably (GAN losses).
func (t *Tape) BCEWithLogits(logits *V, target *tensor.Tensor) *V {
	if !logits.X.SameShape(target) {
		panic("nn: BCE shape mismatch")
	}
	out := t.alloc(1)
	var sum float64
	for i, z := range logits.X.Data {
		zf, tf := float64(z), float64(target.Data[i])
		// log(1+exp(-|z|)) + max(z,0) - z*t
		sum += math.Log1p(math.Exp(-math.Abs(zf))) + math.Max(zf, 0) - zf*tf
	}
	n := float32(len(logits.X.Data))
	out.X.Data[0] = float32(sum) / n
	if t.grad() {
		t.record(func() {
			g := out.G.Data[0] / n
			for i, z := range logits.X.Data {
				s := float32(1 / (1 + math.Exp(-float64(z))))
				logits.G.Data[i] += g * (s - target.Data[i])
			}
		})
	}
	return out
}

// MulScalarBroadcast multiplies each row of a [N,D] by the per-sample
// scalar s [N,1] (a learned, time-dependent gate).
func (t *Tape) MulScalarBroadcast(a, s *V) *V {
	n, d := a.X.Shape[0], a.X.Shape[1]
	if s.X.Shape[0] != n || s.X.Shape[1] != 1 {
		panic("nn: MulScalarBroadcast needs s of shape [N,1]")
	}
	out := t.alloc(n, d)
	for r := 0; r < n; r++ {
		sv := s.X.Data[r]
		row := a.X.Data[r*d : (r+1)*d]
		dst := out.X.Data[r*d : (r+1)*d]
		for j, v := range row {
			dst[j] = v * sv
		}
	}
	if t.grad() {
		t.record(func() {
			for r := 0; r < n; r++ {
				sv := s.X.Data[r]
				var acc float32
				for j := 0; j < d; j++ {
					g := out.G.Data[r*d+j]
					a.G.Data[r*d+j] += g * sv
					acc += g * a.X.Data[r*d+j]
				}
				s.G.Data[r] += acc
			}
		})
	}
	return out
}

// MulChannelBroadcast multiplies a [N,C,H,W] by per-sample channel
// gains b [N,C].
func (t *Tape) MulChannelBroadcast(a, b *V) *V {
	n, c := a.X.Shape[0], a.X.Shape[1]
	spatial := a.X.Shape[2] * a.X.Shape[3]
	if b.X.Shape[0] != n || b.X.Shape[1] != c {
		panic("nn: MulChannelBroadcast shape mismatch")
	}
	out := t.alloc(a.X.Shape...)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			bv := b.X.Data[i*c+ch]
			src := a.X.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
			dst := out.X.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
			for j, v := range src {
				dst[j] = v * bv
			}
		}
	}
	if t.grad() {
		t.record(func() {
			for i := 0; i < n; i++ {
				for ch := 0; ch < c; ch++ {
					bv := b.X.Data[i*c+ch]
					var acc float32
					for j := 0; j < spatial; j++ {
						g := out.G.Data[(i*c+ch)*spatial+j]
						a.G.Data[(i*c+ch)*spatial+j] += g * bv
						acc += g * a.X.Data[(i*c+ch)*spatial+j]
					}
					b.G.Data[i*c+ch] += acc
				}
			}
		})
	}
	return out
}

// Transpose2D returns aᵀ for a [m,n].
func (t *Tape) Transpose2D(a *V) *V {
	m, n := a.X.Shape[0], a.X.Shape[1]
	out := t.alloc(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.X.Data[j*m+i] = a.X.Data[i*n+j]
		}
	}
	if t.grad() {
		t.record(func() {
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					a.G.Data[i*n+j] += out.G.Data[j*m+i]
				}
			}
		})
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax along each row of
// a [m,n].
func (t *Tape) SoftmaxRows(a *V) *V {
	m, n := a.X.Shape[0], a.X.Shape[1]
	out := t.alloc(m, n)
	for i := 0; i < m; i++ {
		row := a.X.Data[i*n : (i+1)*n]
		dst := out.X.Data[i*n : (i+1)*n]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - mx))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	if t.grad() {
		t.record(func() {
			for i := 0; i < m; i++ {
				y := out.X.Data[i*n : (i+1)*n]
				gy := out.G.Data[i*n : (i+1)*n]
				var dot float32
				for j := range y {
					dot += y[j] * gy[j]
				}
				ga := a.G.Data[i*n : (i+1)*n]
				for j := range y {
					ga[j] += y[j] * (gy[j] - dot)
				}
			}
		})
	}
	return out
}

// SliceRows returns rows [lo, hi) of a 2-D value as a view-like node
// (gradients scatter back into the source rows).
func (t *Tape) SliceRows(a *V, lo, hi int) *V {
	n, d := a.X.Shape[0], a.X.Shape[1]
	if lo < 0 || hi > n || lo >= hi {
		panic("nn: SliceRows bounds")
	}
	out := t.alloc(hi-lo, d)
	copy(out.X.Data, a.X.Data[lo*d:hi*d])
	if t.grad() {
		t.record(func() {
			dst := a.G.Data[lo*d : hi*d]
			for i, g := range out.G.Data {
				dst[i] += g
			}
		})
	}
	return out
}
