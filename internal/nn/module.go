package nn

import (
	"math"

	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// LinearLayer bundles a Linear op's weight and bias parameters.
type LinearLayer struct {
	W, B *V
	// Q, when non-nil, holds per-output-channel int8 codes of W and
	// switches Apply to the quantized inference kernel (see quant.go).
	// Never serialized; rebuilt by Quantize after every load.
	Q *tensor.QuantizedMat
}

// NewLinear allocates a layer with Kaiming-uniform-style init.
func NewLinear(r *stats.RNG, in, out int) *LinearLayer {
	l := &LinearLayer{W: Param(out, in), B: Param(out)}
	std := math.Sqrt(2.0 / float64(in))
	l.W.X.Randn(r, std)
	return l
}

// Apply runs the layer on x [N,in] — through the int8 kernel when the
// layer has been Quantized (inference tapes only), the fp32 path
// otherwise.
func (l *LinearLayer) Apply(t *Tape, x *V) *V {
	if l.Q != nil {
		return t.LinearQ(x, l.Q, l.B)
	}
	return t.Linear(x, l.W, l.B)
}

// Params returns the layer's trainable parameters.
func (l *LinearLayer) Params() []*V { return []*V{l.W, l.B} }

// ConvLayer bundles a Conv2D op's parameters and spec.
type ConvLayer struct {
	W, B *V
	Spec tensor.ConvSpec
	// Q mirrors LinearLayer.Q: int8 codes of W [OutC, C*KH*KW],
	// non-nil once Quantize has run.
	Q *tensor.QuantizedMat
}

// NewConv allocates a conv layer with fan-in scaled init.
func NewConv(r *stats.RNG, spec tensor.ConvSpec) *ConvLayer {
	fanIn := spec.InC * spec.KH * spec.KW
	l := &ConvLayer{W: Param(spec.OutC, fanIn), B: Param(spec.OutC), Spec: spec}
	l.W.X.Randn(r, math.Sqrt(2.0/float64(fanIn)))
	return l
}

// Apply runs the layer on x [N,C,H,W], dispatching like
// LinearLayer.Apply.
func (l *ConvLayer) Apply(t *Tape, x *V) *V {
	if l.Q != nil {
		return t.Conv2DQ(x, l.Q, l.B, l.Spec)
	}
	return t.Conv2D(x, l.W, l.B, l.Spec)
}

// Params returns the layer's trainable parameters.
func (l *ConvLayer) Params() []*V { return []*V{l.W, l.B} }

// NormLayer bundles LayerNorm's gamma and beta.
type NormLayer struct {
	Gamma, Beta *V
}

// NewNorm allocates a norm layer (gamma=1, beta=0).
func NewNorm(d int) *NormLayer {
	n := &NormLayer{Gamma: Param(d), Beta: Param(d)}
	n.Gamma.X.Fill(1)
	return n
}

// Apply normalizes x [N,D].
func (n *NormLayer) Apply(t *Tape, x *V) *V { return t.LayerNorm(x, n.Gamma, n.Beta) }

// Params returns gamma and beta.
func (n *NormLayer) Params() []*V { return []*V{n.Gamma, n.Beta} }

// EmbeddingLayer is a learned lookup table [K,D].
type EmbeddingLayer struct {
	Table *V
}

// NewEmbedding allocates a K x D table with N(0, 0.02) init (the
// scale Stable Diffusion uses for token embeddings).
func NewEmbedding(r *stats.RNG, k, d int) *EmbeddingLayer {
	e := &EmbeddingLayer{Table: Param(k, d)}
	e.Table.X.Randn(r, 0.02)
	return e
}

// Apply looks up rows by index.
func (e *EmbeddingLayer) Apply(t *Tape, idx []int) *V { return t.Gather(e.Table, idx) }

// Params returns the table.
func (e *EmbeddingLayer) Params() []*V { return []*V{e.Table} }

// SinusoidalEmbedding returns the standard transformer/DDPM timestep
// features [N, dim]: sin/cos at geometrically spaced frequencies. It
// is a fixed encoding, not a parameter.
func SinusoidalEmbedding(steps []int, dim int) *tensor.Tensor {
	out := tensor.New(len(steps), dim)
	sinusoidalInto(out.Data, steps, dim)
	return out
}

// sinusoidalInto fills data (len(steps)*dim, fully overwritten) with
// the sinusoidal features SinusoidalEmbedding describes.
func sinusoidalInto(data []float32, steps []int, dim int) {
	half := dim / 2
	for r, s := range steps {
		for j := 0; j < half; j++ {
			freq := math.Exp(-math.Log(10000) * float64(j) / float64(half))
			angle := float64(s) * freq
			data[r*dim+j] = float32(math.Sin(angle))
			data[r*dim+half+j] = float32(math.Cos(angle))
		}
	}
}

// TimeEmbed is SinusoidalEmbedding as a tape value: the encoding is
// written into an arena-recycled buffer, so samplers that embed the
// same batch shape every timestep stop allocating for it. The node is
// a constant — no gradient flows from it.
func (t *Tape) TimeEmbed(steps []int, dim int) *V {
	v := t.alloc(len(steps), dim)
	sinusoidalInto(v.X.Data, steps, dim)
	return v
}
