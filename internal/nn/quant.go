package nn

// This file is quantized inference for the layer types: per-output-
// channel symmetric int8 weights with fp32 activations, bias and
// accumulation.
//
// Quantization happens once, at checkpoint-load time — Quantize()
// converts a layer's fp32 weight matrix to a tensor.QuantizedMat and
// the layer's Apply dispatches to the int8 kernels from then on. The
// fp32 weights are kept (serialization and any later re-quantization
// read them); only the forward math changes. Training is untouched by
// construction: the quantized ops refuse to run on a gradient-recording
// tape, so a quantized layer can never silently train against stale
// int8 weights.

import (
	"fmt"

	"trafficdiff/internal/tensor"
)

// Quantize converts the layer's weights to per-output-channel int8.
// After the call, Apply runs the quantized GEMM on no-grad tapes and
// panics on gradient-recording ones. Call again after mutating W
// (e.g. a LoRA merge) to refresh the codes.
func (l *LinearLayer) Quantize() {
	l.Q = tensor.QuantizeSymmetric(l.W.X)
}

// Quantized reports whether Quantize has run.
func (l *LinearLayer) Quantized() bool { return l.Q != nil }

// Unquantize drops the int8 codes, returning Apply to the fp32 path
// (W was never modified, so the revert is byte-exact).
func (l *LinearLayer) Unquantize() { l.Q = nil }

// Quantize converts the conv weights [OutC, C*KH*KW] to per-output-
// channel int8, switching Apply to the quantized epilogue.
func (l *ConvLayer) Quantize() {
	l.Q = tensor.QuantizeSymmetric(l.W.X)
}

// Quantized reports whether Quantize has run.
func (l *ConvLayer) Quantized() bool { return l.Q != nil }

// Unquantize drops the int8 codes, like LinearLayer.Unquantize.
func (l *ConvLayer) Unquantize() { l.Q = nil }

// LinearQ is the int8-weight twin of Linear: out = x·Wqᵀ + b for
// x [N,in], quantized weights [out,in] and fp32 bias [out].
// Inference-only — it records no backward closure and refuses to run
// while the tape records gradients.
func (t *Tape) LinearQ(x *V, w *tensor.QuantizedMat, bias *V) *V {
	if t.grad() {
		//tracelint:allow paniccheck — inference-only contract: training must never touch int8 weights
		panic("nn: LinearQ on a gradient-recording tape (quantized layers are inference-only)")
	}
	n, in := x.X.Shape[0], x.X.Shape[1]
	if w.Cols != in || bias.X.Shape[0] != w.Rows {
		panic(fmt.Sprintf("nn: LinearQ shapes x%v w[%d %d] b%v", x.X.Shape, w.Rows, w.Cols, bias.X.Shape))
	}
	outDim := w.Rows
	out := t.alloc(n, outDim)
	tensor.MatMulABTQInto(out.X, x.X, w)
	for r := 0; r < n; r++ {
		row := out.X.Data[r*outDim:]
		for o := 0; o < outDim; o++ {
			row[o] += bias.X.Data[o]
		}
	}
	return out
}

// Conv2DQ is the int8-weight twin of Conv2D, inference-only like
// LinearQ.
func (t *Tape) Conv2DQ(x *V, w *tensor.QuantizedMat, b *V, s tensor.ConvSpec) *V {
	if t.grad() {
		//tracelint:allow paniccheck — inference-only contract: training must never touch int8 weights
		panic("nn: Conv2DQ on a gradient-recording tape (quantized layers are inference-only)")
	}
	return t.adopt(tensor.Conv2DQ(x.X, w, b.X, s))
}
