package nn

import (
	"bytes"
	"math"
	"testing"

	"trafficdiff/internal/stats"
)

// quadStep runs one Adam step on f(x) = Σ (x_i - target)² gradients.
func quadStep(opt *Adam, params []*V, target float32) {
	for _, p := range params {
		for j := range p.X.Data {
			p.G.Data[j] = 2 * (p.X.Data[j] - target)
		}
	}
	opt.Step()
}

func bitsEqual32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func TestAdamStateResumesBitIdentically(t *testing.T) {
	r := stats.NewRNG(5)
	mk := func() []*V {
		l := NewLinear(r, 3, 4)
		return l.Params()
	}
	// Reference run: 20 straight steps.
	ref := mk()
	refOpt := NewAdam(1e-2, ref)
	refOpt.ClipNorm = 1
	// Twin run from identical weights, interrupted at step 7.
	r = stats.NewRNG(5)
	twin := mk()
	twinOpt := NewAdam(1e-2, twin)
	twinOpt.ClipNorm = 1

	for i := 0; i < 7; i++ {
		quadStep(refOpt, ref, 0.5)
		quadStep(twinOpt, twin, 0.5)
	}
	// Capture, perturb the twin's optimizer, restore.
	step, m, v := twinOpt.State()
	mCopy := make([][]float32, len(m))
	vCopy := make([][]float32, len(v))
	for i := range m {
		mCopy[i] = append([]float32(nil), m[i]...)
		vCopy[i] = append([]float32(nil), v[i]...)
	}
	fresh := NewAdam(1e-2, twin)
	fresh.ClipNorm = 1
	if err := fresh.SetState(step, mCopy, vCopy); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		quadStep(refOpt, ref, 0.5)
		quadStep(fresh, twin, 0.5)
	}
	for i := range ref {
		if !bitsEqual32(ref[i].X.Data, twin[i].X.Data) {
			t.Fatalf("param %d diverged after optimizer state restore", i)
		}
	}
}

func TestAdamSetStateValidates(t *testing.T) {
	p := []*V{Param(3)}
	opt := NewAdam(1e-3, p)
	if err := opt.SetState(-1, [][]float32{make([]float32, 3)}, [][]float32{make([]float32, 3)}); err == nil {
		t.Error("negative step should fail")
	}
	if err := opt.SetState(1, nil, nil); err == nil {
		t.Error("missing moment slices should fail")
	}
	if err := opt.SetState(1, [][]float32{make([]float32, 2)}, [][]float32{make([]float32, 3)}); err == nil {
		t.Error("wrong moment length should fail")
	}
}

func TestEMAShadowRoundTrip(t *testing.T) {
	p := []*V{Param(4)}
	for j := range p[0].X.Data {
		p[0].X.Data[j] = float32(j)
	}
	e := NewEMA(0.9, p)
	p[0].X.Data[0] = 10
	e.Update()
	shadow := make([][]float32, 1)
	shadow[0] = append([]float32(nil), e.Shadow()[0]...)

	e2 := NewEMA(0.9, p)
	if err := e2.SetShadow(shadow); err != nil {
		t.Fatal(err)
	}
	if !bitsEqual32(e2.Shadow()[0], shadow[0]) {
		t.Fatal("shadow not restored exactly")
	}
	if err := e2.SetShadow([][]float32{make([]float32, 3)}); err == nil {
		t.Error("wrong shadow length should fail")
	}
	if err := e2.SetShadow(nil); err == nil {
		t.Error("missing shadow should fail")
	}
}

func TestSaveTrainingRoundTrip(t *testing.T) {
	r := stats.NewRNG(9)
	l := NewLinear(r, 4, 4)
	params := l.Params()
	st := &TrainerState{
		Step:     12,
		AdamStep: 12,
		AdamM:    [][]float32{make([]float32, len(params[0].X.Data)), make([]float32, len(params[1].X.Data))},
		AdamV:    [][]float32{make([]float32, len(params[0].X.Data)), make([]float32, len(params[1].X.Data))},
		RNG:      [4]uint64{1, 2, 3, 4},
		Losses:   []float64{0.5, 0.25, 0.125},
	}
	st.AdamM[0][0] = 0.75
	var buf bytes.Buffer
	if err := SaveTraining(&buf, params, st); err != nil {
		t.Fatal(err)
	}

	r2 := stats.NewRNG(1234)
	fresh := NewLinear(r2, 4, 4).Params()
	got, err := LoadTraining(bytes.NewReader(buf.Bytes()), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 12 || got.AdamStep != 12 {
		t.Fatalf("step = %d/%d, want 12/12", got.Step, got.AdamStep)
	}
	if got.RNG != st.RNG {
		t.Fatalf("rng state = %v", got.RNG)
	}
	if len(got.Losses) != 3 {
		t.Fatalf("losses = %v", got.Losses)
	}
	if math.Float32bits(got.AdamM[0][0]) != math.Float32bits(0.75) {
		t.Fatalf("adam moment not preserved: %v", got.AdamM[0][0])
	}
	if got.EMA != nil {
		t.Fatal("EMA should round-trip as nil when absent")
	}
	for i := range params {
		if !bitsEqual32(params[i].X.Data, fresh[i].X.Data) {
			t.Fatalf("param %d not restored", i)
		}
	}
}

func TestLoadParamsAcceptsTrainingCheckpoint(t *testing.T) {
	// A Version-2 checkpoint is still a valid weights source for
	// loaders that only care about parameters (e.g. traced).
	r := stats.NewRNG(2)
	l := NewLinear(r, 2, 3)
	params := l.Params()
	st := &TrainerState{
		AdamM: [][]float32{make([]float32, len(params[0].X.Data)), make([]float32, len(params[1].X.Data))},
		AdamV: [][]float32{make([]float32, len(params[0].X.Data)), make([]float32, len(params[1].X.Data))},
		RNG:   [4]uint64{1, 1, 1, 1},
	}
	var buf bytes.Buffer
	if err := SaveTraining(&buf, params, st); err != nil {
		t.Fatal(err)
	}
	fresh := NewLinear(stats.NewRNG(77), 2, 3).Params()
	if err := LoadParams(&buf, fresh); err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if !bitsEqual32(params[i].X.Data, fresh[i].X.Data) {
			t.Fatalf("param %d not loaded from V2 checkpoint", i)
		}
	}
}

func TestLoadTrainingRejectsWeightsOnlyCheckpoint(t *testing.T) {
	// Legacy Version-1 files carry no training state to resume from.
	r := stats.NewRNG(2)
	l := NewLinear(r, 2, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, l.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTraining(&buf, l.Params()); err == nil {
		t.Fatal("LoadTraining should reject a weights-only checkpoint")
	}
}
