package heuristic

import (
	"math"
	"testing"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/netfunc"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/workload"
)

func exampleFlows(t testing.TB, class string, n int) []*flow.Flow {
	t.Helper()
	g := workload.NewGenerator(4)
	g.MaxPackets = 30
	p, ok := workload.ProfileByName(class)
	if !ok {
		t.Fatalf("unknown class %q", class)
	}
	flows := make([]*flow.Flow, n)
	for i := range flows {
		flows[i] = g.GenerateFlow(p)
	}
	return flows
}

func TestEmpiricalSampling(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 3, 4, 100})
	r := stats.NewRNG(1)
	var mn, mx float64 = math.Inf(1), math.Inf(-1)
	for i := 0; i < 1000; i++ {
		v := e.Sample(r)
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	if mn < 1 || mx > 100 {
		t.Fatalf("samples [%v, %v] escaped the observed range", mn, mx)
	}
	if (&Empirical{}).Sample(r) != 0 {
		t.Fatal("empty empirical should sample 0")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("no flows should fail")
	}
	if _, err := Fit([]*flow.Flow{{}}); err == nil {
		t.Error("packet-less flows should fail")
	}
}

func TestFitCapturesProtocolMix(t *testing.T) {
	p, err := Fit(exampleFlows(t, "teams", 10))
	if err != nil {
		t.Fatal(err)
	}
	if p.ProtoWeights[packet.ProtoUDP] == 0 {
		t.Fatal("teams fit lost UDP dominance")
	}
	if p.ProtoWeights[packet.ProtoTCP] != 0 {
		t.Fatal("teams fit invented TCP flows")
	}
}

func TestGenerateMatchesAggregateStats(t *testing.T) {
	examples := exampleFlows(t, "netflix", 20)
	p, err := Fit(examples)
	if err != nil {
		t.Fatal(err)
	}
	gen := p.Generate(20, 7)
	if len(gen) != 20 {
		t.Fatalf("generated %d flows", len(gen))
	}
	meanLen := func(fs []*flow.Flow) float64 {
		total := 0
		for _, f := range fs {
			total += len(f.Packets)
		}
		return float64(total) / float64(len(fs))
	}
	realMean, genMean := meanLen(examples), meanLen(gen)
	if math.Abs(realMean-genMean) > realMean*0.5 {
		t.Fatalf("flow length means diverge: real %v gen %v", realMean, genMean)
	}
	// Protocol preserved.
	for _, f := range gen {
		if f.DominantProtocol() != packet.ProtoTCP {
			t.Fatal("netflix heuristic flow not TCP")
		}
	}
}

func TestGeneratedPacketsDecodable(t *testing.T) {
	p, err := Fit(exampleFlows(t, "other", 15))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Generate(10, 3) {
		for _, pk := range f.Packets {
			re, err := packet.Decode(pk.Data, pk.Timestamp)
			if err != nil {
				t.Fatalf("heuristic packet undecodable: %v", err)
			}
			if re.IPv4 == nil {
				t.Fatal("missing IPv4")
			}
		}
	}
}

func TestStatefulnessGapVersusRealTraffic(t *testing.T) {
	// The approach's documented weakness: flag sampling without state
	// produces TCP conformance violations that real traffic does not.
	examples := exampleFlows(t, "amazon", 15)
	p, err := Fit(examples)
	if err != nil {
		t.Fatal(err)
	}
	gen := p.Generate(15, 9)

	violations := func(fs []*flow.Flow) int {
		c := netfunc.NewTCPStateChecker()
		for _, f := range fs {
			for _, pk := range f.Packets {
				c.Process(pk)
			}
		}
		return c.Violations()
	}
	if v := violations(examples); v != 0 {
		t.Fatalf("real traffic has %d violations", v)
	}
	if v := violations(gen); v == 0 {
		t.Fatal("heuristic traffic unexpectedly stateful — the baseline should show the gap")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	p, _ := Fit(exampleFlows(t, "zoom", 10))
	a := p.Generate(3, 42)
	b := p.Generate(3, 42)
	for i := range a {
		if len(a[i].Packets) != len(b[i].Packets) {
			t.Fatal("same-seed generation differs")
		}
		for j := range a[i].Packets {
			if string(a[i].Packets[j].Data) != string(b[i].Packets[j].Data) {
				t.Fatal("same-seed packet bytes differ")
			}
		}
	}
}
