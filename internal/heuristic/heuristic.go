// Package heuristic implements the heuristics-based traffic generator
// family the paper discusses (§2.1: Harpoon, Swing, Botta et al.):
// distribution parameters are extracted from example traffic and new
// flows are spawned by sampling those empirical distributions.
//
// Faithful to that approach's character, the generator reproduces
// aggregate statistics (flow lengths, packet sizes, inter-arrivals,
// protocol and port mix) but carries no learned inter-packet
// dependencies: every packet is sampled independently, so stateful
// structure (handshakes, sequence progression) only "vaguely
// resembles" real traces — the limitation that motivates the paper's
// generative approach.
package heuristic

import (
	"fmt"
	"sort"
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
	"trafficdiff/internal/stats"
)

// Empirical is a sampleable empirical distribution (inverse-CDF over
// observed values).
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds a distribution from observations.
func NewEmpirical(values []float64) *Empirical {
	e := &Empirical{sorted: append([]float64(nil), values...)}
	sort.Float64s(e.sorted)
	return e
}

// Sample draws by inverse-CDF with interpolation.
func (e *Empirical) Sample(r *stats.RNG) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return stats.Quantile(e.sorted, r.Float64())
}

// Len returns the number of fitted observations.
func (e *Empirical) Len() int { return len(e.sorted) }

// Profile holds the distribution parameters extracted from example
// traffic.
type Profile struct {
	FlowLen      *Empirical
	PacketSize   *Empirical
	InterArrival *Empirical // milliseconds
	// ProtoWeights orders TCP/UDP/ICMP prevalence.
	ProtoWeights map[packet.IPProtocol]float64
	// ServerPorts is the observed server-port histogram.
	ServerPorts map[uint16]float64
	// TTLs observed.
	TTLs *Empirical
}

// Fit extracts a Profile from example flows.
func Fit(flows []*flow.Flow) (*Profile, error) {
	if len(flows) == 0 {
		return nil, fmt.Errorf("heuristic: no example flows")
	}
	p := &Profile{
		ProtoWeights: map[packet.IPProtocol]float64{},
		ServerPorts:  map[uint16]float64{},
	}
	var lens, sizes, gaps, ttls []float64
	for _, f := range flows {
		if len(f.Packets) == 0 {
			continue
		}
		lens = append(lens, float64(len(f.Packets)))
		p.ProtoWeights[f.DominantProtocol()]++
		// Server port = lower of the two flow ports, the usual
		// well-known-side convention.
		port := f.Key.A.Port
		if f.Key.B.Port != 0 && (port == 0 || f.Key.B.Port < port) {
			port = f.Key.B.Port
		}
		p.ServerPorts[port]++
		var prev time.Time
		for i, pk := range f.Packets {
			sizes = append(sizes, float64(pk.Length()))
			if pk.IPv4 != nil {
				ttls = append(ttls, float64(pk.IPv4.TTL))
			}
			if i > 0 {
				gaps = append(gaps, pk.Timestamp.Sub(prev).Seconds()*1000)
			}
			prev = pk.Timestamp
		}
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("heuristic: example flows carry no packets")
	}
	if len(gaps) == 0 {
		gaps = []float64{1}
	}
	p.FlowLen = NewEmpirical(lens)
	p.PacketSize = NewEmpirical(sizes)
	p.InterArrival = NewEmpirical(gaps)
	p.TTLs = NewEmpirical(ttls)
	return p, nil
}

// Generate spawns n synthetic flows by independent sampling from the
// fitted distributions.
func (p *Profile) Generate(n int, seed uint64) []*flow.Flow {
	r := stats.NewRNG(seed)
	protoCat := protoCategorical(p.ProtoWeights)
	ports, portCat := portCategorical(p.ServerPorts)
	var b packet.Builder
	base := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)

	out := make([]*flow.Flow, 0, n)
	for i := 0; i < n; i++ {
		f := &flow.Flow{}
		length := int(p.FlowLen.Sample(r))
		if length < 1 {
			length = 1
		}
		proto := protoCat(r)
		sPort := ports[portCat.SampleIndex(r)]
		cPort := uint16(32768 + r.Intn(28000))
		client := [4]byte{10, byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(254))}
		server := [4]byte{93, byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(254))}
		ts := base.Add(time.Duration(i) * time.Second)
		for j := 0; j < length; j++ {
			size := int(p.PacketSize.Sample(r))
			payload := size - 54 // rough header overhead
			if payload < 0 {
				payload = 0
			}
			ttl := uint8(p.TTLs.Sample(r))
			down := r.Bool(0.6)
			src, dst := client, server
			sp, dp := cPort, sPort
			if down {
				src, dst, sp, dp = server, client, sPort, cPort
			}
			ip := packet.IPv4{TTL: ttl, ID: uint16(r.Intn(65536)), SrcIP: src, DstIP: dst}
			switch proto {
			case packet.ProtoTCP:
				// No state machine: flags are sampled, not tracked —
				// the approach's characteristic weakness.
				flags := packet.FlagACK
				if r.Bool(0.05) {
					flags |= packet.FlagSYN
				}
				if r.Bool(0.3) {
					flags |= packet.FlagPSH
				}
				f.Append(b.BuildTCP(ts, ip, packet.TCP{
					SrcPort: sp, DstPort: dp,
					Seq: uint32(r.Uint64()), Ack: uint32(r.Uint64()),
					Flags: flags, Window: uint16(r.Intn(65536)),
				}, make([]byte, payload)))
			case packet.ProtoUDP:
				f.Append(b.BuildUDP(ts, ip, packet.UDP{SrcPort: sp, DstPort: dp}, make([]byte, payload)))
			default:
				var ic packet.ICMPv4
				ic.Type = packet.ICMPEchoRequest
				ic.SetEcho(uint16(i), uint16(j))
				f.Append(b.BuildICMP(ts, ip, ic, make([]byte, payload)))
			}
			ts = ts.Add(time.Duration(p.InterArrival.Sample(r) * float64(time.Millisecond)))
		}
		out = append(out, f)
	}
	return out
}

func protoCategorical(w map[packet.IPProtocol]float64) func(r *stats.RNG) packet.IPProtocol {
	protos := []packet.IPProtocol{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}
	weights := make([]float64, len(protos))
	any := false
	for i, p := range protos {
		weights[i] = w[p]
		if weights[i] > 0 {
			any = true
		}
	}
	if !any {
		weights[0] = 1
	}
	cat := stats.NewCategorical(weights)
	return func(r *stats.RNG) packet.IPProtocol { return protos[cat.SampleIndex(r)] }
}

func portCategorical(hist map[uint16]float64) ([]uint16, *stats.Categorical) {
	ports := make([]uint16, 0, len(hist))
	for p := range hist {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	if len(ports) == 0 {
		ports = []uint16{443}
	}
	weights := make([]float64, len(ports))
	for i, p := range ports {
		weights[i] = hist[p]
		if weights[i] <= 0 {
			weights[i] = 1
		}
	}
	return ports, stats.NewCategorical(weights)
}

// Values exposes the sorted observations (for serialization).
func (e *Empirical) Values() []float64 { return append([]float64(nil), e.sorted...) }
