package rf

import "fmt"

// Accuracy returns the fraction of predictions equal to truth.
func Accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		//tracelint:allow paniccheck — shape invariant on caller-built slices, same class as tensor kernel checks
		panic("rf: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// ConfusionMatrix is counts[truth][pred] for k classes.
type ConfusionMatrix struct {
	K      int
	Counts [][]int
}

// NewConfusionMatrix tallies a prediction run.
func NewConfusionMatrix(pred, truth []int, k int) (*ConfusionMatrix, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("rf: %d predictions, %d truths", len(pred), len(truth))
	}
	cm := &ConfusionMatrix{K: k, Counts: make([][]int, k)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, k)
	}
	for i := range pred {
		if truth[i] < 0 || truth[i] >= k || pred[i] < 0 || pred[i] >= k {
			return nil, fmt.Errorf("rf: class out of range at %d (truth %d, pred %d)", i, truth[i], pred[i])
		}
		cm.Counts[truth[i]][pred[i]]++
	}
	return cm, nil
}

// PerClassRecall returns recall per true class (NaN-free: classes with
// no examples report 0).
func (cm *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, cm.K)
	for c := 0; c < cm.K; c++ {
		total := 0
		for p := 0; p < cm.K; p++ {
			total += cm.Counts[c][p]
		}
		if total > 0 {
			out[c] = float64(cm.Counts[c][c]) / float64(total)
		}
	}
	return out
}

// Accuracy returns overall accuracy from the matrix.
func (cm *ConfusionMatrix) Accuracy() float64 {
	hits, total := 0, 0
	for c := 0; c < cm.K; c++ {
		for p := 0; p < cm.K; p++ {
			total += cm.Counts[c][p]
			if c == p {
				hits += cm.Counts[c][p]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
