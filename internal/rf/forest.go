package rf

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"trafficdiff/internal/stats"
)

// Config controls forest training.
type Config struct {
	// Trees is the ensemble size.
	Trees int
	// MaxDepth bounds each tree (0 = 24).
	MaxDepth int
	// MinSamplesSplit stops splitting small nodes (0 = 2).
	MinSamplesSplit int
	// Mtry is the number of random features examined per split
	// (0 = √F, the classification default).
	Mtry int
	// Thresholds is the number of candidate split values sampled per
	// feature (0 = 8).
	Thresholds int
	Seed       uint64
}

// DefaultConfig returns the settings the experiments use.
func DefaultConfig() Config { return Config{Trees: 30, Seed: 1} }

// Forest is a trained random forest.
type Forest struct {
	trees []*Tree
	k     int
}

// Train fits a forest on x (rows of equal width) with labels y in
// [0, k). Trees train concurrently; results are deterministic for a
// given seed because every tree receives its own RNG stream, Split off
// a root generator sequentially before any goroutine starts.
func Train(x [][]float32, y []int, k int, cfg Config) (*Forest, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("rf: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("rf: %d rows, %d labels", len(x), len(y))
	}
	width := len(x[0])
	if width == 0 {
		return nil, fmt.Errorf("rf: zero-width feature rows")
	}
	for i, row := range x {
		if len(row) != width {
			return nil, fmt.Errorf("rf: row %d has %d features, want %d", i, len(row), width)
		}
	}
	for i, l := range y {
		if l < 0 || l >= k {
			return nil, fmt.Errorf("rf: label %d at row %d out of range [0,%d)", l, i, k)
		}
	}
	if cfg.Trees <= 0 {
		return nil, fmt.Errorf("rf: need at least one tree")
	}
	tc := treeConfig{
		maxDepth:        cfg.MaxDepth,
		minSamplesSplit: cfg.MinSamplesSplit,
		mtry:            cfg.Mtry,
		thresholds:      cfg.Thresholds,
	}
	if tc.maxDepth <= 0 {
		tc.maxDepth = 24
	}
	if tc.minSamplesSplit <= 0 {
		tc.minSamplesSplit = 2
	}
	if tc.mtry <= 0 {
		tc.mtry = int(math.Sqrt(float64(width)))
		if tc.mtry < 1 {
			tc.mtry = 1
		}
	}
	if tc.thresholds <= 0 {
		tc.thresholds = 8
	}

	f := &Forest{trees: make([]*Tree, cfg.Trees), k: k}
	// Derive one independent stream per tree on this goroutine, before
	// any worker starts: Split advances the root deterministically, so
	// tree ti's stream depends only on (seed, ti), never on schedule.
	root := stats.NewRNG(cfg.Seed)
	rngs := make([]*stats.RNG, cfg.Trees)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for ti := 0; ti < cfg.Trees; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := rngs[ti]
			// Bootstrap sample.
			idx := make([]int, len(x))
			for i := range idx {
				idx[i] = r.Intn(len(x))
			}
			f.trees[ti] = growTree(x, y, idx, k, tc, r)
		}(ti)
	}
	wg.Wait()
	return f, nil
}

// Predict returns the majority-vote class for one row.
func (f *Forest) Predict(row []float32) int {
	votes := make([]int, f.k)
	for _, t := range f.trees {
		votes[t.Predict(row)]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// PredictBatch classifies many rows concurrently.
func (f *Forest) PredictBatch(x [][]float32) []int {
	out := make([]int, len(x))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(x) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(x) {
			hi = len(x)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = f.Predict(x[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }
