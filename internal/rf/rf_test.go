package rf

import (
	"testing"

	"trafficdiff/internal/stats"
)

// blobs generates k well-separated Gaussian clusters in dim dims.
func blobs(n, k, dim int, seed uint64) ([][]float32, []int) {
	r := stats.NewRNG(seed)
	x := make([][]float32, n)
	y := make([]int, n)
	for i := range x {
		cls := i % k
		row := make([]float32, dim)
		for j := range row {
			center := float32(0)
			if j%k == cls {
				center = 5
			}
			row[j] = center + float32(r.NormFloat64())
		}
		x[i] = row
		y[i] = cls
	}
	return x, y
}

func TestForestSeparableAccuracy(t *testing.T) {
	x, y := blobs(300, 3, 6, 1)
	xt, yt := blobs(90, 3, 6, 2)
	f, err := Train(x, y, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(f.PredictBatch(xt), yt)
	if acc < 0.95 {
		t.Fatalf("accuracy on separable blobs = %v", acc)
	}
}

func TestForestDeterministicPerSeed(t *testing.T) {
	x, y := blobs(100, 2, 4, 3)
	cfg := DefaultConfig()
	cfg.Trees = 5
	f1, _ := Train(x, y, 2, cfg)
	f2, _ := Train(x, y, 2, cfg)
	xt, _ := blobs(50, 2, 4, 4)
	p1, p2 := f1.PredictBatch(xt), f2.PredictBatch(xt)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestForestValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Train(nil, nil, 2, cfg); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := Train([][]float32{{1}}, []int{0, 1}, 2, cfg); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Train([][]float32{{1}, {1, 2}}, []int{0, 0}, 2, cfg); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := Train([][]float32{{1}}, []int{3}, 2, cfg); err == nil {
		t.Error("bad label should fail")
	}
	if _, err := Train([][]float32{{}}, []int{0}, 1, cfg); err == nil {
		t.Error("zero-width rows should fail")
	}
	bad := cfg
	bad.Trees = 0
	if _, err := Train([][]float32{{1}}, []int{0}, 1, bad); err == nil {
		t.Error("zero trees should fail")
	}
}

func TestSingleClassDegenerates(t *testing.T) {
	x := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	y := []int{0, 0, 0}
	f, err := Train(x, y, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Predict([]float32{9, 9}) != 0 {
		t.Fatal("single-class forest should always predict 0")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	x, y := blobs(200, 2, 4, 5)
	cfg := DefaultConfig()
	cfg.Trees = 3
	cfg.MaxDepth = 2
	f, err := Train(x, y, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range f.trees {
		if d := tree.Depth(); d > 2 {
			t.Fatalf("tree depth %d exceeds max 2", d)
		}
	}
}

func TestBinaryFeaturesSplit(t *testing.T) {
	// nprint features are in {-1,0,1}; the threshold search must
	// handle ternary features.
	r := stats.NewRNG(6)
	n := 200
	x := make([][]float32, n)
	y := make([]int, n)
	for i := range x {
		cls := i % 2
		row := make([]float32, 8)
		for j := range row {
			row[j] = float32(r.Intn(2)) // noise bits
		}
		row[3] = float32(cls) // signal bit
		x[i] = row
		y[i] = cls
	}
	f, err := Train(x, y, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(f.PredictBatch(x), y); acc < 0.99 {
		t.Fatalf("ternary-feature accuracy = %v", acc)
	}
}

func TestAccuracyHelper(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); got != 2.0/3.0 {
		t.Fatalf("accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm, err := NewConfusionMatrix([]int{0, 1, 1, 0}, []int{0, 1, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Counts[0][0] != 2 || cm.Counts[0][1] != 1 || cm.Counts[1][1] != 1 {
		t.Fatalf("counts = %v", cm.Counts)
	}
	if cm.Accuracy() != 0.75 {
		t.Fatalf("cm accuracy = %v", cm.Accuracy())
	}
	rec := cm.PerClassRecall()
	if rec[0] != 2.0/3.0 || rec[1] != 1 {
		t.Fatalf("recall = %v", rec)
	}
}

func TestConfusionMatrixValidation(t *testing.T) {
	if _, err := NewConfusionMatrix([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewConfusionMatrix([]int{5}, []int{0}, 2); err == nil {
		t.Error("out-of-range class should fail")
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	x, y := blobs(100, 2, 4, 7)
	f, _ := Train(x, y, 2, DefaultConfig())
	xt, _ := blobs(37, 2, 4, 8)
	batch := f.PredictBatch(xt)
	for i, row := range xt {
		if f.Predict(row) != batch[i] {
			t.Fatal("batch and single predictions disagree")
		}
	}
}

func TestNumTrees(t *testing.T) {
	x, y := blobs(20, 2, 4, 9)
	cfg := DefaultConfig()
	cfg.Trees = 7
	f, _ := Train(x, y, 2, cfg)
	if f.NumTrees() != 7 {
		t.Fatalf("trees = %d", f.NumTrees())
	}
}
