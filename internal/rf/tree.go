// Package rf implements the Random Forest classifier the paper's
// service-recognition case study uses: bagged CART decision trees with
// Gini impurity and per-split feature subsampling, plus the accuracy
// and confusion-matrix metrics Table 2 reports.
package rf

import (
	"sort"

	"trafficdiff/internal/stats"
)

// treeNode is one node of a CART tree, stored in a flat slice.
type treeNode struct {
	// feature < 0 marks a leaf with prediction class `pred`.
	feature   int
	threshold float32
	left      int32
	right     int32
	pred      int32
}

// Tree is a single CART decision tree.
type Tree struct {
	nodes []treeNode
	k     int // class count
}

// treeConfig bounds tree growth.
type treeConfig struct {
	maxDepth        int
	minSamplesSplit int
	mtry            int // features considered per split
	thresholds      int // candidate thresholds per feature
}

// growTree fits a tree on the rows indexed by idx.
func growTree(x [][]float32, y []int, idx []int, k int, cfg treeConfig, r *stats.RNG) *Tree {
	t := &Tree{k: k}
	t.build(x, y, idx, 0, cfg, r)
	return t
}

func (t *Tree) build(x [][]float32, y []int, idx []int, depth int, cfg treeConfig, r *stats.RNG) int32 {
	counts := make([]int, t.k)
	for _, i := range idx {
		counts[y[i]]++
	}
	best, bestN, pure := 0, -1, true
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
		if n != 0 && n != len(idx) {
			pure = false
		}
	}
	leaf := func() int32 {
		t.nodes = append(t.nodes, treeNode{feature: -1, pred: int32(best)})
		return int32(len(t.nodes) - 1)
	}
	if pure || len(idx) < cfg.minSamplesSplit || depth >= cfg.maxDepth {
		return leaf()
	}

	feat, thr, ok := t.bestSplit(x, y, idx, counts, cfg, r)
	if !ok {
		return leaf()
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return leaf()
	}
	// Reserve this node's slot before recursing so children land after
	// the parent.
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: feat, threshold: thr})
	l := t.build(x, y, li, depth+1, cfg, r)
	rr := t.build(x, y, ri, depth+1, cfg, r)
	t.nodes[node].left = l
	t.nodes[node].right = rr
	return node
}

// bestSplit searches mtry random features for the Gini-optimal
// threshold.
func (t *Tree) bestSplit(x [][]float32, y []int, idx []int, parentCounts []int, cfg treeConfig, r *stats.RNG) (feat int, thr float32, ok bool) {
	nf := len(x[0])
	parentGini := gini(parentCounts, len(idx))
	bestGain := 1e-7
	leftCounts := make([]int, t.k)

	for trial := 0; trial < cfg.mtry; trial++ {
		f := r.Intn(nf)
		// Candidate thresholds: midpoints between up to cfg.thresholds
		// sampled distinct values.
		cands := t.candidates(x, idx, f, cfg.thresholds, r)
		for _, c := range cands {
			for i := range leftCounts {
				leftCounts[i] = 0
			}
			nl := 0
			for _, i := range idx {
				if x[i][f] <= c {
					leftCounts[y[i]]++
					nl++
				}
			}
			nr := len(idx) - nl
			if nl == 0 || nr == 0 {
				continue
			}
			gl := gini(leftCounts, nl)
			grCounts := make([]int, t.k)
			for i := range grCounts {
				grCounts[i] = parentCounts[i] - leftCounts[i]
			}
			gr := gini(grCounts, nr)
			gain := parentGini - (float64(nl)*gl+float64(nr)*gr)/float64(len(idx))
			if gain > bestGain {
				bestGain, feat, thr, ok = gain, f, c, true
			}
		}
	}
	return feat, thr, ok
}

// candidates returns up to limit midpoint thresholds for feature f
// over the node's samples.
func (t *Tree) candidates(x [][]float32, idx []int, f, limit int, r *stats.RNG) []float32 {
	seen := map[float32]bool{}
	vals := make([]float64, 0, limit+1)
	// Sample up to 4*limit rows looking for distinct values.
	for trial := 0; trial < 4*limit && len(vals) <= limit; trial++ {
		v := x[idx[r.Intn(len(idx))]][f]
		if !seen[v] {
			seen[v] = true
			vals = append(vals, float64(v))
		}
	}
	if len(vals) < 2 {
		return nil
	}
	sort.Float64s(vals)
	out := make([]float32, 0, len(vals)-1)
	for i := 1; i < len(vals); i++ {
		out = append(out, float32((vals[i-1]+vals[i])/2))
	}
	return out
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

// Predict returns the class for one feature vector.
func (t *Tree) Predict(row []float32) int {
	i := int32(0)
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return int(n.pred)
		}
		if row[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Depth returns the tree's maximum depth (root = 0).
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := t.nodes[i]
		if n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0)
}
