package gan

import (
	"math"
	"testing"

	"trafficdiff/internal/stats"
)

// twoClusterData builds rows from two well-separated Gaussian clusters
// with matching labels.
func twoClusterData(n int, seed uint64) ([][]float64, []int) {
	r := stats.NewRNG(seed)
	features := make([][]float64, n)
	labels := make([]int, n)
	for i := range features {
		cls := i % 2
		center := -5.0
		if cls == 1 {
			center = 5.0
		}
		features[i] = []float64{center + r.NormFloat64(), center*2 + r.NormFloat64()}
		labels[i] = cls
	}
	return features, labels
}

func TestTrainValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Train(nil, nil, 2, cfg); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, 2, cfg); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []int{0, 0}, 2, cfg); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := Train([][]float64{{1}}, []int{5}, 2, cfg); err == nil {
		t.Error("out-of-range label should fail")
	}
	bad := cfg
	bad.Steps = 0
	if _, err := Train([][]float64{{1}}, []int{0}, 2, bad); err == nil {
		t.Error("zero steps should fail")
	}
}

func TestTrainingLossesFinite(t *testing.T) {
	features, labels := twoClusterData(64, 1)
	cfg := DefaultConfig()
	cfg.Steps = 100
	m, err := Train(features, labels, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.DLosses) != 100 || len(m.GLosses) != 100 {
		t.Fatalf("loss curves %d/%d", len(m.DLosses), len(m.GLosses))
	}
	for i := range m.DLosses {
		if math.IsNaN(m.DLosses[i]) || math.IsNaN(m.GLosses[i]) {
			t.Fatalf("NaN loss at step %d", i)
		}
	}
}

func TestGenerateShapeAndLabels(t *testing.T) {
	features, labels := twoClusterData(64, 2)
	cfg := DefaultConfig()
	cfg.Steps = 50
	m, err := Train(features, labels, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gf, gl := m.Generate(100, 7)
	if len(gf) != 100 || len(gl) != 100 {
		t.Fatalf("generated %d/%d", len(gf), len(gl))
	}
	for i := range gf {
		if len(gf[i]) != 2 {
			t.Fatalf("row %d width %d", i, len(gf[i]))
		}
		if gl[i] < 0 || gl[i] >= 2 {
			t.Fatalf("label %d out of range", gl[i])
		}
		for _, v := range gf[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite generated feature")
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	features, labels := twoClusterData(32, 3)
	cfg := DefaultConfig()
	cfg.Steps = 30
	m, _ := Train(features, labels, 2, cfg)
	a, la := m.Generate(10, 42)
	b, lb := m.Generate(10, 42)
	for i := range a {
		if la[i] != lb[i] {
			t.Fatal("labels differ across same-seed generations")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("features differ across same-seed generations")
			}
		}
	}
}

func TestGANLearnsCoarseDistribution(t *testing.T) {
	// After training on well-separated clusters the generated feature
	// distribution must spread toward the real support: its mean
	// absolute value should be far from 0 relative to the raw
	// normalized init, and within the real data's range.
	features, labels := twoClusterData(256, 4)
	cfg := DefaultConfig()
	cfg.Steps = 600
	cfg.Seed = 5
	m, err := Train(features, labels, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gf, _ := m.Generate(400, 1)
	var minV, maxV float64 = math.Inf(1), math.Inf(-1)
	for _, row := range gf {
		for _, v := range row {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	// Real support is roughly [-13, 13]; generated values must land in
	// a generously padded version of it and actually spread out.
	if minV < -40 || maxV > 40 {
		t.Fatalf("generated range [%v, %v] escaped real support", minV, maxV)
	}
	if maxV-minV < 2 {
		t.Fatalf("generator collapsed to a point: range [%v, %v]", minV, maxV)
	}
}

func TestClassDistributionShift(t *testing.T) {
	// Train on 90/10 imbalanced labels: with the label generated as
	// just another feature there is no mechanism tying the class head
	// to the real label distribution, so the generated distribution
	// drifts from the real one — the "distribution shift" the paper
	// reports in §2.3. We assert a substantial total-variation gap.
	r := stats.NewRNG(6)
	var features [][]float64
	var labels []int
	for i := 0; i < 300; i++ {
		cls := 0
		if i%10 == 0 {
			cls = 1
		}
		center := -3.0
		if cls == 1 {
			center = 3.0
		}
		features = append(features, []float64{center + r.NormFloat64()})
		labels = append(labels, cls)
	}
	cfg := DefaultConfig()
	cfg.Steps = 400
	m, err := Train(features, labels, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, gl := m.Generate(500, 3)
	counts := [2]float64{}
	for _, l := range gl {
		counts[l]++
	}
	genP := counts[0] / 500
	tv := math.Abs(genP - 0.9) // real P(class 0) = 0.9
	if tv < 0.1 {
		t.Fatalf("GAN label distribution unexpectedly matched real data: P0=%v", genP)
	}
}
