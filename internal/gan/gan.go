// Package gan implements the NetShare/DoppelGANger-style baseline the
// paper compares against: an adversarially trained generator over
// NetFlow-like aggregate feature vectors.
//
// Faithful to the baseline's architecture — and to the paper's
// criticism of it (§2.3) — the class label is generated as just
// another feature (a score block appended to the feature vector)
// rather than conditioning the generator, so per-class fidelity is not
// optimized and real-world class imbalance tends to be amplified
// (Figure 1). The package also supports the paper's "per-class GAN"
// supplemental experiment by training one model per class.
package gan

import (
	"fmt"
	"math"

	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// Config controls GAN training.
type Config struct {
	ZDim   int // latent size
	Hidden int // MLP width
	Steps  int // adversarial steps (one D + one G update each)
	Batch  int
	LRG    float64
	LRD    float64
	Seed   uint64
}

// DefaultConfig returns the settings the experiments use.
func DefaultConfig() Config {
	return Config{ZDim: 16, Hidden: 64, Steps: 400, Batch: 32, LRG: 1e-3, LRD: 1e-3, Seed: 1}
}

// Model is a trained GAN over feature vectors with K class-score
// outputs appended.
type Model struct {
	F, K int
	cfg  Config

	g1, g2, g3 *nn.LinearLayer // generator
	d1, d2, d3 *nn.LinearLayer // discriminator

	mean, std []float64 // per-feature normalization

	// DLosses and GLosses record the training curves.
	DLosses, GLosses []float64
}

// Train fits a GAN on feature rows with integer labels in [0, k).
func Train(features [][]float64, labels []int, k int, cfg Config) (*Model, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("gan: empty training set")
	}
	if len(features) != len(labels) {
		return nil, fmt.Errorf("gan: %d features, %d labels", len(features), len(labels))
	}
	if cfg.Batch <= 0 || cfg.Steps <= 0 || cfg.ZDim <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("gan: invalid config %+v", cfg)
	}
	f := len(features[0])
	for i, row := range features {
		if len(row) != f {
			return nil, fmt.Errorf("gan: row %d has %d features, want %d", i, len(row), f)
		}
	}
	for i, l := range labels {
		if l < 0 || l >= k {
			return nil, fmt.Errorf("gan: label %d at row %d out of range [0,%d)", l, i, k)
		}
	}
	r := stats.NewRNG(cfg.Seed)
	m := &Model{
		F: f, K: k, cfg: cfg,
		g1: nn.NewLinear(r, cfg.ZDim, cfg.Hidden),
		g2: nn.NewLinear(r, cfg.Hidden, cfg.Hidden),
		g3: nn.NewLinear(r, cfg.Hidden, f+k),
		d1: nn.NewLinear(r, f+k, cfg.Hidden),
		d2: nn.NewLinear(r, cfg.Hidden, cfg.Hidden),
		d3: nn.NewLinear(r, cfg.Hidden, 1),
	}
	m.fitNormalization(features)

	// Normalized real rows with one-hot class blocks.
	real := make([][]float32, len(features))
	for i, row := range features {
		v := make([]float32, f+k)
		for j, x := range row {
			v[j] = float32((x - m.mean[j]) / m.std[j])
		}
		v[f+labels[i]] = 1
		real[i] = v
	}

	gParams := collect(m.g1, m.g2, m.g3)
	dParams := collect(m.d1, m.d2, m.d3)
	optG := nn.NewAdam(cfg.LRG, gParams)
	optG.ClipNorm = 5
	optD := nn.NewAdam(cfg.LRD, dParams)
	optD.ClipNorm = 5

	n := cfg.Batch
	ones := tensor.New(n, 1)
	ones.Fill(1)
	zeros := tensor.New(n, 1)

	for step := 0; step < cfg.Steps; step++ {
		// ---- Discriminator update (generator detached). ----
		fake := m.generateRaw(r, n) // constant w.r.t. this tape
		realBatch := tensor.New(n, f+k)
		for i := 0; i < n; i++ {
			copy(realBatch.Data[i*(f+k):(i+1)*(f+k)], real[r.Intn(len(real))])
		}
		tp := nn.NewTape()
		lossD := tp.Scale(tp.Add(
			tp.BCEWithLogits(m.discriminate(tp, nn.NewV(realBatch)), ones.Reshape(n, 1)),
			tp.BCEWithLogits(m.discriminate(tp, nn.NewV(fake)), zeros.Reshape(n, 1)),
		), 0.5)
		dv := float64(lossD.X.Data[0])
		if math.IsNaN(dv) || math.IsInf(dv, 0) {
			return nil, fmt.Errorf("gan: non-finite D loss at step %d", step)
		}
		m.DLosses = append(m.DLosses, dv)
		tp.Backward(lossD)
		optD.Step()

		// ---- Generator update (non-saturating loss). ----
		z := tensor.New(n, cfg.ZDim).Randn(r, 1)
		tp2 := nn.NewTape()
		out := m.generate(tp2, nn.NewV(z))
		lossG := tp2.BCEWithLogits(m.discriminate(tp2, out), ones.Reshape(n, 1))
		gv := float64(lossG.X.Data[0])
		if math.IsNaN(gv) || math.IsInf(gv, 0) {
			return nil, fmt.Errorf("gan: non-finite G loss at step %d", step)
		}
		m.GLosses = append(m.GLosses, gv)
		tp2.Backward(lossG)
		// Freeze D for the G step: its gradients from this tape are
		// discarded.
		optD.ZeroGrads()
		optG.Step()
	}
	return m, nil
}

func collect(layers ...*nn.LinearLayer) []*nn.V {
	var ps []*nn.V
	for _, l := range layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

func (m *Model) fitNormalization(features [][]float64) {
	f := m.F
	m.mean = make([]float64, f)
	m.std = make([]float64, f)
	for j := 0; j < f; j++ {
		var sum float64
		for _, row := range features {
			sum += row[j]
		}
		m.mean[j] = sum / float64(len(features))
		var sq float64
		for _, row := range features {
			d := row[j] - m.mean[j]
			sq += d * d
		}
		m.std[j] = math.Sqrt(sq / float64(len(features)))
		if m.std[j] < 1e-9 {
			m.std[j] = 1
		}
	}
}

// generate runs the generator graph on z. The output head is bounded
// by 3·tanh so generated (normalized) features stay within ±3σ of the
// real data — the same bounded-output trick DoppelGANger-style
// generators use for stability.
func (m *Model) generate(tp *nn.Tape, z *nn.V) *nn.V {
	h := tp.LeakyReLU(m.g1.Apply(tp, z), 0.2)
	h = tp.LeakyReLU(m.g2.Apply(tp, h), 0.2)
	return tp.Scale(tp.Tanh(m.g3.Apply(tp, h)), 3)
}

// generateRaw produces a detached fake batch.
func (m *Model) generateRaw(r *stats.RNG, n int) *tensor.Tensor {
	z := tensor.New(n, m.cfg.ZDim).Randn(r, 1)
	tp := nn.NewTape()
	out := m.generate(tp, nn.NewV(z))
	tp.Reset()
	return out.X
}

// discriminate runs the discriminator graph on x.
func (m *Model) discriminate(tp *nn.Tape, x *nn.V) *nn.V {
	h := tp.LeakyReLU(m.d1.Apply(tp, x), 0.2)
	h = tp.LeakyReLU(m.d2.Apply(tp, h), 0.2)
	return m.d3.Apply(tp, h)
}

// Generate draws n synthetic rows: denormalized feature vectors and
// the label taken as the argmax of the generated class-score block —
// the "label is just another feature" behaviour under test.
func (m *Model) Generate(n int, seed uint64) (features [][]float64, labels []int) {
	r := stats.NewRNG(seed)
	raw := m.generateRaw(r, n)
	features = make([][]float64, n)
	labels = make([]int, n)
	width := m.F + m.K
	for i := 0; i < n; i++ {
		row := raw.Data[i*width : (i+1)*width]
		feat := make([]float64, m.F)
		for j := 0; j < m.F; j++ {
			feat[j] = float64(row[j])*m.std[j] + m.mean[j]
		}
		features[i] = feat
		best, bestV := 0, float32(math.Inf(-1))
		for c := 0; c < m.K; c++ {
			if row[m.F+c] > bestV {
				best, bestV = c, row[m.F+c]
			}
		}
		labels[i] = best
	}
	return features, labels
}
