package lora

import (
	"math"
	"testing"

	"trafficdiff/internal/diffusion"
	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

func TestAdapterStartsAsNoOp(t *testing.T) {
	r := stats.NewRNG(1)
	base := nn.NewLinear(r, 6, 4)
	ad := NewAdapter(r, 6, 4, 2, 8)
	x := nn.NewV(tensor.New(3, 6).Randn(r, 1))

	tp := nn.NewTape()
	plain := base.Apply(tp, x)
	adapted := ad.Apply(tp, base, x)
	tp.Reset()
	for i := range plain.X.Data {
		if plain.X.Data[i] != adapted.X.Data[i] {
			t.Fatal("zero-init adapter changed output")
		}
	}
}

func TestAdapterRankValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank > dims")
		}
	}()
	NewAdapter(stats.NewRNG(1), 2, 2, 5, 1)
}

func TestAdapterLearnsResidualWithFrozenBase(t *testing.T) {
	// Freeze a random base layer; train only the adapter to map x to a
	// target function. The adapter's low-rank path must close the gap.
	r := stats.NewRNG(2)
	base := nn.NewLinear(r, 4, 4)
	ad := NewAdapter(r, 4, 4, 2, 4)
	opt := nn.NewAdam(0.05, ad.Params()) // base params excluded: frozen

	x := tensor.New(16, 4).Randn(r, 1)
	// Rank-1 target residual y = (x·u)·vᵀ — representable by a rank-2
	// adapter on top of the (frozen) base output.
	u := []float32{1, -0.5, 0.25, 2}
	v := []float32{0.5, 1, -1, 0.75}
	target := tensor.New(16, 4)
	for i := 0; i < 16; i++ {
		var dot float32
		for j := 0; j < 4; j++ {
			dot += x.Data[i*4+j] * u[j]
		}
		for j := 0; j < 4; j++ {
			target.Data[i*4+j] = dot * v[j]
		}
	}
	// Fold the base layer's own output into the target so the adapter
	// only has to learn the rank-1 part.
	{
		tp := nn.NewTape()
		baseOut := base.Apply(tp, nn.NewV(x))
		tp.Reset()
		for i := range target.Data {
			target.Data[i] += baseOut.X.Data[i]
		}
	}
	baseW := append([]float32(nil), base.W.X.Data...)

	var last float32
	for i := 0; i < 400; i++ {
		tp := nn.NewTape()
		out := ad.Apply(tp, base, nn.NewV(x))
		loss := tp.MSE(out, target)
		last = loss.X.Data[0]
		tp.Backward(loss)
		// The tape writes gradients into base params too; drop them to
		// emulate freezing before stepping adapter params.
		base.W.ZeroGrad()
		base.B.ZeroGrad()
		opt.Step()
	}
	if last > 0.1 {
		t.Fatalf("adapter failed to fit residual: loss %v", last)
	}
	for i := range baseW {
		if base.W.X.Data[i] != baseW[i] {
			t.Fatal("base weights moved during adapter training")
		}
	}
}

func TestMergeMatchesAdapterOutput(t *testing.T) {
	r := stats.NewRNG(3)
	base := nn.NewLinear(r, 5, 3)
	ad := NewAdapter(r, 5, 3, 2, 6)
	// Give B non-zero values so the adapter does something.
	ad.B.X.Randn(r, 0.5)
	x := nn.NewV(tensor.New(2, 5).Randn(r, 1))

	tp := nn.NewTape()
	adapted := ad.Apply(tp, base, x)
	tp.Reset()

	ad.Merge(base)
	tp2 := nn.NewTape()
	merged := base.Apply(tp2, x)
	tp2.Reset()

	for i := range adapted.X.Data {
		if math.Abs(float64(adapted.X.Data[i]-merged.X.Data[i])) > 1e-4 {
			t.Fatalf("merge mismatch at %d: %v vs %v", i, adapted.X.Data[i], merged.X.Data[i])
		}
	}
}

func TestAdaptedMLPMatchesBaseInitially(t *testing.T) {
	r := stats.NewRNG(4)
	base := diffusion.NewMLPDenoiser(r, 4, 6, 32, 2)
	// Give the base's own class table some training signal proxy: the
	// adapted model replaces it, so outputs can differ only through
	// class embeddings. Zero both tables to compare the rest.
	base.ClassEmbLayer().Table.X.Zero()
	ad := NewAdaptedMLP(r, base, 2, 4, 3)
	ad.ClassEmb.Table.X.Zero()

	x := tensor.New(2, 1, 4, 6).Randn(r, 1)
	tp := nn.NewTape()
	y1 := base.Forward(tp, nn.NewV(x.Clone()), []int{1, 2}, []int{0, 1}, nil)
	tp.Reset()
	tp2 := nn.NewTape()
	y2 := ad.Forward(tp2, nn.NewV(x.Clone()), []int{1, 2}, []int{0, 1}, nil)
	tp2.Reset()
	for i := range y1.X.Data {
		if math.Abs(float64(y1.X.Data[i]-y2.X.Data[i])) > 1e-5 {
			t.Fatalf("adapted output diverges at init: %v vs %v", y1.X.Data[i], y2.X.Data[i])
		}
	}
}

func TestAdaptedMLPExtendsClassCount(t *testing.T) {
	r := stats.NewRNG(5)
	base := diffusion.NewMLPDenoiser(r, 4, 4, 16, 2)
	ad := NewAdaptedMLP(r, base, 2, 4, 5) // extend 2 -> 5 classes
	if ad.NullClass() != 5 {
		t.Fatalf("null class = %d, want 5", ad.NullClass())
	}
	h, w := ad.Shape()
	if h != 4 || w != 4 {
		t.Fatalf("shape = %dx%d", h, w)
	}
	// Forward works with the new class ids.
	x := tensor.New(1, 1, 4, 4).Randn(r, 1)
	tp := nn.NewTape()
	y := ad.Forward(tp, nn.NewV(x), []int{0}, []int{4}, nil)
	tp.Reset()
	if y.X.Shape[0] != 1 {
		t.Fatal("forward failed for extended class")
	}
}

func TestAdaptedFineTuneTrains(t *testing.T) {
	// End-to-end: freeze base, fine-tune adapters via diffusion.Train
	// with FreezeBase + ExtraParams, loss must drop.
	r := stats.NewRNG(6)
	base := diffusion.NewMLPDenoiser(r, 4, 8, 48, 2)
	ad := NewAdaptedMLP(r, base, 4, 8, 2)
	sched := diffusion.NewSchedule(diffusion.ScheduleCosine, 30)

	set := &diffusion.TrainSet{}
	for rep := 0; rep < 6; rep++ {
		for cls := 0; cls < 2; cls++ {
			im := tensor.New(1, 4, 8)
			for j := range im.Data {
				v := float32(-1)
				if (j%8 < 4) == (cls == 0) {
					v = 1
				}
				im.Data[j] = v
			}
			set.Images = append(set.Images, im)
			set.Labels = append(set.Labels, cls)
		}
	}
	losses, err := diffusion.Train(ad, sched, set, diffusion.TrainConfig{
		Steps: 150, Batch: 6, LR: 1e-2, ClipNorm: 5, Seed: 1,
		FreezeBase: true, ExtraParams: ad.Params(),
	})
	if err != nil {
		t.Fatal(err)
	}
	head, tail := 0.0, 0.0
	for _, l := range losses[:15] {
		head += l
	}
	for _, l := range losses[len(losses)-15:] {
		tail += l
	}
	if tail >= head {
		t.Fatalf("fine-tune loss did not decrease: %v -> %v", head/15, tail/15)
	}
}
