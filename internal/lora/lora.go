// Package lora implements Low-Rank Adaptation (Hu et al. 2021) for the
// nn layers used by the diffusion denoiser.
//
// The paper fine-tunes its base diffusion model with LoRA so new
// traffic classes can be added by training only small low-rank deltas
// plus a new "word" (class) embedding, leaving the base weights
// frozen. An adapter replaces y = x·Wᵀ + b with
//
//	y = x·Wᵀ + b + (α/r)·(x·Aᵀ)·Bᵀ
//
// where A is [r, in] (Gaussian-initialized) and B is [out, r]
// (zero-initialized), so the adapted model starts exactly equal to the
// base model.
package lora

import (
	"fmt"
	"math"

	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
)

// Adapter is a LoRA delta attached to one linear layer.
type Adapter struct {
	A, B  *nn.V // A [r,in], B [out,r]
	Rank  int
	Alpha float64
}

// NewAdapter creates a rank-r adapter for a layer with the given fan-in
// and fan-out. B starts at zero so the adapter is initially a no-op.
func NewAdapter(r *stats.RNG, in, out, rank int, alpha float64) *Adapter {
	if rank <= 0 || rank > in || rank > out {
		//tracelint:allow paniccheck — shape invariant on adapter construction, same class as tensor kernel checks
		panic(fmt.Sprintf("lora: rank %d out of range for %dx%d layer", rank, in, out))
	}
	ad := &Adapter{A: nn.Param(rank, in), B: nn.Param(out, rank), Rank: rank, Alpha: alpha}
	ad.A.X.Randn(r, 1/math.Sqrt(float64(in)))
	return ad
}

// Params returns the adapter's trainable parameters.
func (ad *Adapter) Params() []*nn.V { return []*nn.V{ad.A, ad.B} }

// Apply computes the adapted output for base layer l on x [N,in]:
// base(x) + (α/r)·(x·Aᵀ)·Bᵀ.
func (ad *Adapter) Apply(tp *nn.Tape, l *nn.LinearLayer, x *nn.V) *nn.V {
	base := l.Apply(tp, x)
	zeroA := nn.Param(ad.Rank) // zero bias for the low-rank projections
	zeroB := nn.Param(ad.B.X.Shape[0])
	down := tp.Linear(x, ad.A, zeroA)  // [N, r]
	up := tp.Linear(down, ad.B, zeroB) // [N, out]
	scaled := tp.Scale(up, float32(ad.Alpha/float64(ad.Rank)))
	return tp.Add(base, scaled)
}

// Merge folds the adapter into the base layer's weights in place
// (W ← W + (α/r)·B·A) so inference no longer needs the adapter. The
// standard deployment step once fine-tuning is done.
func (ad *Adapter) Merge(l *nn.LinearLayer) {
	out, in := l.W.X.Shape[0], l.W.X.Shape[1]
	r := ad.Rank
	scale := float32(ad.Alpha / float64(r))
	for o := 0; o < out; o++ {
		for i := 0; i < in; i++ {
			var sum float32
			for k := 0; k < r; k++ {
				sum += ad.B.X.Data[o*r+k] * ad.A.X.Data[k*in+i]
			}
			l.W.X.Data[o*in+i] += scale * sum
		}
	}
}
