package lora

import (
	"trafficdiff/internal/diffusion"
	"trafficdiff/internal/nn"
	"trafficdiff/internal/stats"
	"trafficdiff/internal/tensor"
)

// AdaptedMLP wraps a diffusion.MLPDenoiser with LoRA adapters on its
// projection layers plus a fresh class-embedding table, reproducing
// the paper's "add-on model fine-tuned for extended coverage": the
// base denoiser stays frozen while the adapters and the new word
// embeddings learn the traffic classes.
type AdaptedMLP struct {
	Base *diffusion.MLPDenoiser

	XProj *Adapter
	Hid   *Adapter
	Out   *Adapter
	// ClassEmb replaces the base class table so new classes can be
	// introduced without touching base weights.
	ClassEmb *nn.EmbeddingLayer
}

// NewAdaptedMLP attaches rank-r adapters to base. k is the number of
// classes the fine-tuned model must cover (its table gets k+1 rows).
func NewAdaptedMLP(r *stats.RNG, base *diffusion.MLPDenoiser, rank int, alpha float64, k int) *AdaptedMLP {
	d := base.H * base.W
	return &AdaptedMLP{
		Base:     base,
		XProj:    NewAdapter(r, d, base.Hidden, rank, alpha),
		Hid:      NewAdapter(r, base.Hidden, base.Hidden, rank, alpha),
		Out:      NewAdapter(r, base.Hidden, d, rank, alpha),
		ClassEmb: nn.NewEmbedding(r, k+1, base.Hidden),
	}
}

// Params returns only the adapter and embedding parameters — the
// trainable set during fine-tuning (pass as TrainConfig.ExtraParams
// with FreezeBase).
func (a *AdaptedMLP) Params() []*nn.V {
	var ps []*nn.V
	ps = append(ps, a.XProj.Params()...)
	ps = append(ps, a.Hid.Params()...)
	ps = append(ps, a.Out.Params()...)
	ps = append(ps, a.ClassEmb.Params()...)
	return ps
}

// NullClass implements diffusion.Denoiser.
func (a *AdaptedMLP) NullClass() int { return a.ClassEmb.Table.X.Shape[0] - 1 }

// Shape implements diffusion.Denoiser.
func (a *AdaptedMLP) Shape() (int, int) { return a.Base.Shape() }

// Quantize implements diffusion.Quantizable: the frozen base
// projections — where essentially all of the adapted forward's
// multiply-adds live — switch to int8 weights. The rank-r adapter
// paths stay fp32: they are a ~r/hidden sliver of the work, and
// keeping them full precision preserves the fine-tuned deltas
// exactly.
func (a *AdaptedMLP) Quantize() {
	a.Base.XProjLayer().Quantize()
	a.Base.CtrlProjLayer().Quantize()
	a.Base.HidLayer().Quantize()
	a.Base.OutLayer().Quantize()
}

// Precision implements diffusion.Quantizable.
func (a *AdaptedMLP) Precision() diffusion.Precision {
	if a.Base.XProjLayer().Quantized() {
		return diffusion.PrecisionInt8
	}
	return diffusion.PrecisionFP32
}

// Forward implements diffusion.Denoiser: the base MLP's architecture
// with adapter deltas on each projection and the new class table.
func (a *AdaptedMLP) Forward(tp *nn.Tape, xt *nn.V, steps []int, class []int, control *tensor.Tensor) *nn.V {
	n := xt.X.Shape[0]
	h, w := a.Base.Shape()
	d := h * w
	x2 := tp.Reshape(xt, n, d)

	// One sinusoidal embedding feeds both the time projection and the
	// gate (it was previously computed twice per forward).
	tfeat := tp.TimeEmbed(steps, diffusion.TimeEmbedDim())
	hv := a.XProj.Apply(tp, a.Base.XProjLayer(), x2)
	temb := tp.Linear(tfeat, a.Base.TimeProjLayer().W, a.Base.TimeProjLayer().B)
	hv = tp.Add(hv, temb)
	hv = tp.Add(hv, a.ClassEmb.Apply(tp, class))
	if control != nil {
		ctrl := tp.Input(control.Reshape(n, d))
		hv = tp.Add(hv, a.Base.CtrlProjLayer().Apply(tp, ctrl))
	}
	hv = tp.SiLU(a.Base.Norm1Layer().Apply(tp, hv))
	h2 := tp.SiLU(a.Base.Norm2Layer().Apply(tp, a.Hid.Apply(tp, a.Base.HidLayer(), hv)))
	hv = tp.Add(hv, h2)
	eps := a.Out.Apply(tp, a.Base.OutLayer(), hv)
	// Mirror the base model's time-gated input skip (frozen gate).
	eps = tp.Add(eps, tp.MulScalarBroadcast(x2, a.Base.GateLayer().Apply(tp, tfeat)))
	return tp.Reshape(eps, n, 1, h, w)
}
