package nprint

import (
	"fmt"
	"time"

	"trafficdiff/internal/packet"
)

// DecodeOptions controls back-transformation from nprint bits to
// packets.
type DecodeOptions struct {
	// Repair recomputes lengths and checksums and reconciles an
	// inconsistent IP protocol field with the transport section that
	// is actually populated. Generated matrices are rarely bit-perfect,
	// and the paper's pipeline "back-transforms" them into replayable
	// pcaps, so Repair is the mode synthesis uses. Without Repair,
	// inconsistencies are decoding errors.
	Repair bool
	// Interval spaces the reconstructed packets' timestamps. Zero
	// means 1ms.
	Interval time.Duration
	// Start is the first packet's timestamp.
	Start time.Time
}

// DecodeRow reconstructs a single packet from one nprint row.
func DecodeRow(row []int8, ts time.Time, opts DecodeOptions) (*packet.Packet, error) {
	if len(row) != BitsPerPacket {
		return nil, ErrBadShape
	}
	if SectionVacant(row, IPv4Offset, IPv4Bits) {
		return nil, fmt.Errorf("nprint: row has no IPv4 header bits")
	}

	ipBytes := readBits(row, IPv4Offset, 60)
	var ip packet.IPv4
	ihl := ipBytes[0] & 0x0f
	if ihl < 5 || ihl > 15 {
		if !opts.Repair {
			return nil, fmt.Errorf("nprint: invalid IHL %d", ihl)
		}
		ihl = 5
	}
	ip.Version = 4
	ip.IHL = ihl
	ip.TOS = ipBytes[1]
	ip.Length = u16(ipBytes[2:])
	ip.ID = u16(ipBytes[4:])
	flagsFrag := u16(ipBytes[6:])
	ip.Flags = packet.IPv4Flag(flagsFrag >> 13)
	ip.FragOffset = flagsFrag & 0x1fff
	ip.TTL = ipBytes[8]
	ip.Protocol = packet.IPProtocol(ipBytes[9])
	ip.Checksum = u16(ipBytes[10:])
	copy(ip.SrcIP[:], ipBytes[12:16])
	copy(ip.DstIP[:], ipBytes[16:20])
	if ihl > 5 {
		ip.Options = ipBytes[20 : int(ihl)*4]
	}

	proto, err := resolveProtocol(row, ip.Protocol, opts.Repair)
	if err != nil {
		return nil, err
	}

	var b packet.Builder
	switch proto {
	case packet.ProtoTCP:
		tb := readBits(row, TCPOffset, 60)
		var tcp packet.TCP
		tcp.SrcPort = u16(tb[0:])
		tcp.DstPort = u16(tb[2:])
		tcp.Seq = u32(tb[4:])
		tcp.Ack = u32(tb[8:])
		off := tb[12] >> 4
		if off < 5 || off > 15 {
			if !opts.Repair {
				return nil, fmt.Errorf("nprint: invalid TCP data offset %d", off)
			}
			off = 5
		}
		tcp.Flags = packet.TCPFlags(u16(tb[12:]) & 0x1ff)
		tcp.Window = u16(tb[14:])
		tcp.Urgent = u16(tb[18:])
		if off > 5 {
			tcp.Options = tb[20 : int(off)*4]
		}
		return b.BuildTCP(ts, ip, tcp, payloadFor(ip, int(off)*4, opts.Repair)), nil
	case packet.ProtoUDP:
		ub := readBits(row, UDPOffset, 8)
		udp := packet.UDP{SrcPort: u16(ub[0:]), DstPort: u16(ub[2:])}
		return b.BuildUDP(ts, ip, udp, payloadFor(ip, 8, opts.Repair)), nil
	case packet.ProtoICMP:
		ib := readBits(row, ICMPOffset, 8)
		icmp := packet.ICMPv4{Type: ib[0], Code: ib[1]}
		copy(icmp.RestOfHeader[:], ib[4:8])
		return b.BuildICMP(ts, ip, icmp, payloadFor(ip, 8, opts.Repair)), nil
	}
	return nil, fmt.Errorf("nprint: unsupported protocol %d", uint8(proto))
}

// resolveProtocol reconciles the IP header's protocol byte with the
// transport sections present in the row.
func resolveProtocol(row []int8, declared packet.IPProtocol, repair bool) (packet.IPProtocol, error) {
	tcpPresent := !SectionVacant(row, TCPOffset, TCPBits)
	udpPresent := !SectionVacant(row, UDPOffset, UDPBits)
	icmpPresent := !SectionVacant(row, ICMPOffset, ICMPBits)

	matches := func(p packet.IPProtocol) bool {
		switch p {
		case packet.ProtoTCP:
			return tcpPresent
		case packet.ProtoUDP:
			return udpPresent
		case packet.ProtoICMP:
			return icmpPresent
		}
		return false
	}
	if matches(declared) {
		return declared, nil
	}
	if !repair {
		return 0, fmt.Errorf("nprint: protocol byte %d disagrees with populated sections (tcp=%v udp=%v icmp=%v)",
			uint8(declared), tcpPresent, udpPresent, icmpPresent)
	}
	// Repair: trust the populated section; prefer the widest header so
	// a row with several populated sections stays deterministic.
	switch {
	case tcpPresent:
		return packet.ProtoTCP, nil
	case udpPresent:
		return packet.ProtoUDP, nil
	case icmpPresent:
		return packet.ProtoICMP, nil
	}
	return 0, fmt.Errorf("nprint: no transport section populated")
}

// payloadFor sizes a zero payload so the reconstructed packet's total
// length approximates the original IP Length field. nprint does not
// carry payload bytes, so content is zeros, but preserving sizes keeps
// packet-size distributions intact for replay. In repair mode the
// total is clamped to a standard 1500-byte Ethernet MTU: generated
// Length bits can decode to arbitrary values, and frames beyond the
// MTU would not be replayable on a real link.
func payloadFor(ip packet.IPv4, transportHeaderLen int, repair bool) []byte {
	total := int(ip.Length)
	maxPayload := 65535
	if repair {
		mtuPayload := 1500 - ip.HeaderLen() - transportHeaderLen
		if mtuPayload < 0 {
			mtuPayload = 0
		}
		maxPayload = mtuPayload
	}
	want := total - ip.HeaderLen() - transportHeaderLen
	if want <= 0 {
		return nil
	}
	if want > maxPayload {
		want = maxPayload
	}
	return make([]byte, want)
}

// ToPackets back-transforms a matrix into packets. Rows that fail to
// decode are skipped in Repair mode and counted in skipped; without
// Repair the first failure aborts.
func ToPackets(m *Matrix, opts DecodeOptions) (pkts []*packet.Packet, skipped int, err error) {
	interval := opts.Interval
	if interval <= 0 {
		interval = time.Millisecond
	}
	ts := opts.Start
	if ts.IsZero() {
		ts = time.Unix(0, 0).UTC()
	}
	for i := 0; i < m.NumRows; i++ {
		p, derr := DecodeRow(m.Row(i), ts.Add(time.Duration(i)*interval), opts)
		if derr != nil {
			if opts.Repair {
				skipped++
				continue
			}
			return pkts, skipped, fmt.Errorf("row %d: %w", i, derr)
		}
		pkts = append(pkts, p)
	}
	return pkts, skipped, nil
}

func u16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
