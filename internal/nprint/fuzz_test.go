package nprint

import (
	"strings"
	"testing"
	"time"
)

// FuzzReadCSV asserts the CSV parser never panics and rejects anything
// that isn't 1088 values of {-1,0,1} per line.
func FuzzReadCSV(f *testing.F) {
	good := strings.Repeat("0,", BitsPerPacket-1) + "1"
	f.Add("# header\n" + good + "\n")
	f.Add(good)
	f.Add("")
	f.Add("1,2,3")
	f.Add(strings.Repeat("-1,", BitsPerPacket-1) + "x")

	f.Fuzz(func(t *testing.T, data string) {
		m, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted matrix fails validation: %v", verr)
		}
	})
}

// FuzzDecodeRow asserts the row decoder never panics on arbitrary
// ternary rows: it either errors or produces a decodable packet.
func FuzzDecodeRow(f *testing.F) {
	f.Add([]byte{0}, false)
	f.Add([]byte{1, 2, 0, 1}, true)
	f.Fuzz(func(t *testing.T, raw []byte, repair bool) {
		row := make([]int8, BitsPerPacket)
		for i := range row {
			if len(raw) == 0 {
				row[i] = Vacant
				continue
			}
			switch raw[i%len(raw)] % 3 {
			case 0:
				row[i] = Vacant
			case 1:
				row[i] = Zero
			default:
				row[i] = One
			}
		}
		p, err := DecodeRow(row, time.Unix(0, 0), DecodeOptions{Repair: repair})
		if err != nil {
			return
		}
		if p == nil || p.IPv4 == nil {
			t.Fatal("successful decode produced packet without IPv4")
		}
		if len(p.Data) < 34 {
			t.Fatalf("implausibly short frame: %d bytes", len(p.Data))
		}
	})
}
