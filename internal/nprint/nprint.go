// Package nprint implements the bit-level packet representation the
// paper trains on: each packet becomes a fixed 1088-bit vector covering
// all IPv4, TCP, UDP and ICMP header fields, with each bit encoded as
// 1 or 0 for present content and -1 for vacant positions (headers or
// options the packet does not carry). A flow becomes a matrix with one
// row per packet (up to 1024 rows), which the imagerep package renders
// as the image the diffusion model consumes.
//
// Section layout (matching the paper's Figure 2 column counts):
//
//	[0,    480)  IPv4  — 60 bytes: full option-capable header
//	[480,  960)  TCP   — 60 bytes: full option-capable header
//	[960, 1024)  UDP   — 8 bytes
//	[1024,1088)  ICMP  — 8 bytes
package nprint

import (
	"errors"
	"fmt"
)

// Section bit offsets and widths.
const (
	IPv4Offset = 0
	IPv4Bits   = 480
	TCPOffset  = IPv4Offset + IPv4Bits
	TCPBits    = 480
	UDPOffset  = TCPOffset + TCPBits
	UDPBits    = 64
	ICMPOffset = UDPOffset + UDPBits
	ICMPBits   = 64

	// BitsPerPacket is the row width: 1088 bit-level features.
	BitsPerPacket = IPv4Bits + TCPBits + UDPBits + ICMPBits

	// MaxPacketsPerFlow caps the rows per flow image (paper §3.1:
	// "up to 1024 packets").
	MaxPacketsPerFlow = 1024
)

// Bit values. Vacant marks header regions the packet does not carry.
const (
	Vacant int8 = -1
	Zero   int8 = 0
	One    int8 = 1
)

// ErrBadShape reports a matrix whose row width is not BitsPerPacket.
var ErrBadShape = errors.New("nprint: matrix width is not 1088 bits")

// Matrix is a flow's nprint representation: NumRows packets by
// BitsPerPacket bit-features, stored flat row-major.
type Matrix struct {
	NumRows int
	Data    []int8
}

// NewMatrix allocates an all-vacant matrix with rows packets.
func NewMatrix(rows int) *Matrix {
	m := &Matrix{NumRows: rows, Data: make([]int8, rows*BitsPerPacket)}
	for i := range m.Data {
		m.Data[i] = Vacant
	}
	return m
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []int8 {
	return m.Data[i*BitsPerPacket : (i+1)*BitsPerPacket]
}

// Validate checks the storage shape.
func (m *Matrix) Validate() error {
	if len(m.Data) != m.NumRows*BitsPerPacket {
		return fmt.Errorf("%w: %d rows but %d cells", ErrBadShape, m.NumRows, len(m.Data))
	}
	for i, v := range m.Data {
		if v != Vacant && v != Zero && v != One {
			return fmt.Errorf("nprint: cell %d holds %d, want -1/0/1", i, v)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{NumRows: m.NumRows, Data: append([]int8(nil), m.Data...)}
}

// SectionVacant reports whether row's [off, off+bits) span is entirely
// vacant.
func SectionVacant(row []int8, off, bits int) bool {
	for _, v := range row[off : off+bits] {
		if v != Vacant {
			return false
		}
	}
	return true
}

// SectionActive reports whether any bit in the span is 1.
func SectionActive(row []int8, off, bits int) bool {
	for _, v := range row[off : off+bits] {
		if v == One {
			return true
		}
	}
	return false
}

// writeBits encodes data MSB-first into row starting at bit offset off.
func writeBits(row []int8, off int, data []byte) {
	for i, b := range data {
		base := off + i*8
		for j := 0; j < 8; j++ {
			if b&(1<<(7-j)) != 0 {
				row[base+j] = One
			} else {
				row[base+j] = Zero
			}
		}
	}
}

// readBits decodes n bytes MSB-first from row at bit offset off,
// mapping Vacant bits to 0.
func readBits(row []int8, off, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		base := off + i*8
		var b byte
		for j := 0; j < 8; j++ {
			if row[base+j] == One {
				b |= 1 << (7 - j)
			}
		}
		out[i] = b
	}
	return out
}
