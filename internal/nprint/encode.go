package nprint

import (
	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
)

// EncodePacket writes p's header bits into row. The row must be
// BitsPerPacket wide; positions for headers the packet does not carry
// are set to Vacant.
func EncodePacket(row []int8, p *packet.Packet) {
	for i := range row {
		row[i] = Vacant
	}
	ip := p.IPv4
	if ip == nil {
		return
	}

	// IPv4 section: serialize the header exactly as it would appear on
	// the wire (without payload) and write IHL*4 bytes of bits; the
	// remainder of the 60-byte region stays vacant.
	ipHdr := serializeIPv4Header(ip)
	writeBits(row, IPv4Offset, ipHdr)

	switch {
	case p.TCP != nil:
		writeBits(row, TCPOffset, serializeTCPHeader(p.TCP))
	case p.UDP != nil:
		writeBits(row, UDPOffset, serializeUDPHeader(p.UDP))
	case p.ICMP != nil:
		writeBits(row, ICMPOffset, serializeICMPHeader(p.ICMP))
	}
}

// serializeIPv4Header renders the IPv4 header bytes verbatim from the
// decoded fields (no checksum or length recomputation — nprint must
// reflect the capture, warts and all).
func serializeIPv4Header(ip *packet.IPv4) []byte {
	hlen := ip.HeaderLen()
	if hlen < 20 {
		hlen = 20
	}
	if hlen > 60 {
		hlen = 60
	}
	out := make([]byte, hlen)
	out[0] = ip.Version<<4 | uint8(hlen/4)
	out[1] = ip.TOS
	be16(out[2:], ip.Length)
	be16(out[4:], ip.ID)
	be16(out[6:], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	out[8] = ip.TTL
	out[9] = byte(ip.Protocol)
	be16(out[10:], ip.Checksum)
	copy(out[12:16], ip.SrcIP[:])
	copy(out[16:20], ip.DstIP[:])
	copy(out[20:], ip.Options)
	return out
}

func serializeTCPHeader(t *packet.TCP) []byte {
	hlen := t.HeaderLen()
	if hlen < 20 {
		hlen = 20
	}
	if hlen > 60 {
		hlen = 60
	}
	out := make([]byte, hlen)
	be16(out[0:], t.SrcPort)
	be16(out[2:], t.DstPort)
	be32(out[4:], t.Seq)
	be32(out[8:], t.Ack)
	be16(out[12:], uint16(hlen/4)<<12|uint16(t.Flags)&0x1ff)
	be16(out[14:], t.Window)
	be16(out[16:], t.Checksum)
	be16(out[18:], t.Urgent)
	copy(out[20:], t.Options)
	return out
}

func serializeUDPHeader(u *packet.UDP) []byte {
	out := make([]byte, 8)
	be16(out[0:], u.SrcPort)
	be16(out[2:], u.DstPort)
	be16(out[4:], u.Length)
	be16(out[6:], u.Checksum)
	return out
}

func serializeICMPHeader(i *packet.ICMPv4) []byte {
	out := make([]byte, 8)
	out[0] = i.Type
	out[1] = i.Code
	be16(out[2:], i.Checksum)
	copy(out[4:], i.RestOfHeader[:])
	return out
}

func be16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func be32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// FromFlow encodes up to maxRows packets of f into a Matrix. maxRows
// <= 0 means MaxPacketsPerFlow. Flows longer than the cap are
// truncated (paper §3.2: "the first 1024 packets of each network
// flow").
func FromFlow(f *flow.Flow, maxRows int) *Matrix {
	if maxRows <= 0 || maxRows > MaxPacketsPerFlow {
		maxRows = MaxPacketsPerFlow
	}
	n := len(f.Packets)
	if n > maxRows {
		n = maxRows
	}
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		EncodePacket(m.Row(i), f.Packets[i])
	}
	return m
}
