package nprint

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes a matrix as the nprint tool's CSV layout: one
// row per packet, 1088 comma-separated values in {-1,0,1}, preceded by
// a header line naming the sections.
func WriteCSV(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	header := fmt.Sprintf("# nprint bits=%d ipv4=%d tcp=%d udp=%d icmp=%d rows=%d",
		BitsPerPacket, IPv4Bits, TCPBits, UDPBits, ICMPBits, m.NumRows)
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for r := 0; r < m.NumRows; r++ {
		row := m.Row(r)
		for c, v := range row {
			if c > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(v))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format. Lines beginning with '#' are
// ignored; every data line must carry exactly 1088 values in
// {-1,0,1}.
func ReadCSV(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var rows [][]int8
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != BitsPerPacket {
			return nil, fmt.Errorf("nprint: line %d has %d values, want %d", lineNo, len(parts), BitsPerPacket)
		}
		row := make([]int8, BitsPerPacket)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("nprint: line %d col %d: %w", lineNo, i, err)
			}
			if v < -1 || v > 1 {
				return nil, fmt.Errorf("nprint: line %d col %d: value %d not in {-1,0,1}", lineNo, i, v)
			}
			row[i] = int8(v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m := NewMatrix(len(rows))
	for i, row := range rows {
		copy(m.Row(i), row)
	}
	return m, nil
}
