package nprint

import (
	"bytes"
	"strings"
	"testing"

	"trafficdiff/internal/flow"
)

func TestCSVRoundTrip(t *testing.T) {
	f := &flow.Flow{}
	for i := 0; i < 3; i++ {
		f.Append(buildTCP(t, nil, 10*i))
	}
	in := FromFlow(f, 0)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows != in.NumRows {
		t.Fatalf("rows %d != %d", out.NumRows, in.NumRows)
	}
	for i := range in.Data {
		if in.Data[i] != out.Data[i] {
			t.Fatalf("cell %d mismatch", i)
		}
	}
}

func TestCSVEmptyMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, NewMatrix(0)); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows != 0 {
		t.Fatalf("rows = %d", out.NumRows)
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"short row":    "1,0,-1\n",
		"bad value":    strings.Repeat("2,", BitsPerPacket-1) + "2\n",
		"non-numeric":  strings.Repeat("x,", BitsPerPacket-1) + "x\n",
		"out of range": strings.Repeat("-1,", BitsPerPacket-1) + "9\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCSVSkipsComments(t *testing.T) {
	row := strings.Repeat("0,", BitsPerPacket-1) + "1"
	data := "# header\n\n" + row + "\n# trailer\n"
	m, err := ReadCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 1 || m.Row(0)[BitsPerPacket-1] != 1 {
		t.Fatal("comment handling broke parsing")
	}
}
