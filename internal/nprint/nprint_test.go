package nprint

import (
	"testing"
	"testing/quick"
	"time"

	"trafficdiff/internal/flow"
	"trafficdiff/internal/packet"
)

var t0 = time.Date(2023, 11, 28, 10, 0, 0, 0, time.UTC)

func buildTCP(t testing.TB, opts []byte, payloadLen int) *packet.Packet {
	t.Helper()
	var b packet.Builder
	ip := packet.IPv4{TTL: 64, SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, ID: 77}
	tcp := packet.TCP{SrcPort: 443, DstPort: 50123, Seq: 111, Ack: 222, Flags: packet.FlagACK | packet.FlagPSH, Window: 29200, Options: opts}
	return b.BuildTCP(t0, ip, tcp, make([]byte, payloadLen))
}

func TestEncodeTCPSections(t *testing.T) {
	p := buildTCP(t, nil, 0)
	row := make([]int8, BitsPerPacket)
	EncodePacket(row, p)

	if SectionVacant(row, IPv4Offset, IPv4Bits) {
		t.Error("IPv4 section vacant")
	}
	if SectionVacant(row, TCPOffset, TCPBits) {
		t.Error("TCP section vacant")
	}
	if !SectionVacant(row, UDPOffset, UDPBits) {
		t.Error("UDP section should be vacant for TCP packet")
	}
	if !SectionVacant(row, ICMPOffset, ICMPBits) {
		t.Error("ICMP section should be vacant for TCP packet")
	}
	// Without options, bits beyond the 20-byte TCP header are vacant.
	if !SectionVacant(row, TCPOffset+160, TCPBits-160) {
		t.Error("TCP option region should be vacant without options")
	}
}

func TestEncodeUDPSections(t *testing.T) {
	var b packet.Builder
	ip := packet.IPv4{TTL: 64, SrcIP: [4]byte{1, 2, 3, 4}, DstIP: [4]byte{5, 6, 7, 8}}
	p := b.BuildUDP(t0, ip, packet.UDP{SrcPort: 3478, DstPort: 9999}, []byte{1, 2})
	row := make([]int8, BitsPerPacket)
	EncodePacket(row, p)
	if SectionVacant(row, UDPOffset, UDPBits) {
		t.Error("UDP section vacant")
	}
	if !SectionVacant(row, TCPOffset, TCPBits) {
		t.Error("TCP section should be vacant for UDP packet")
	}
}

func TestEncodeICMPSections(t *testing.T) {
	var b packet.Builder
	ip := packet.IPv4{TTL: 64, SrcIP: [4]byte{1, 2, 3, 4}, DstIP: [4]byte{5, 6, 7, 8}}
	var ic packet.ICMPv4
	ic.Type = packet.ICMPEchoRequest
	ic.SetEcho(3, 4)
	p := b.BuildICMP(t0, ip, ic, nil)
	row := make([]int8, BitsPerPacket)
	EncodePacket(row, p)
	if SectionVacant(row, ICMPOffset, ICMPBits) {
		t.Error("ICMP section vacant")
	}
	if !SectionVacant(row, TCPOffset, TCPBits) || !SectionVacant(row, UDPOffset, UDPBits) {
		t.Error("TCP/UDP sections should be vacant for ICMP packet")
	}
}

func TestRoundTripTCP(t *testing.T) {
	in := buildTCP(t, []byte{2, 4, 5, 180}, 100)
	row := make([]int8, BitsPerPacket)
	EncodePacket(row, in)
	out, err := DecodeRow(row, t0, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.TCP == nil {
		t.Fatal("decoded packet lacks TCP")
	}
	if out.TCP.SrcPort != 443 || out.TCP.DstPort != 50123 ||
		out.TCP.Seq != 111 || out.TCP.Ack != 222 ||
		out.TCP.Flags != packet.FlagACK|packet.FlagPSH ||
		out.TCP.Window != 29200 {
		t.Errorf("TCP fields mismatch: %+v", out.TCP)
	}
	if len(out.TCP.Options) != 4 || out.TCP.Options[0] != 2 {
		t.Errorf("options = %v", out.TCP.Options)
	}
	if out.IPv4.TTL != 64 || out.IPv4.ID != 77 {
		t.Errorf("IP fields mismatch: %+v", out.IPv4)
	}
	// Payload sizing preserved via IP length.
	if len(out.Payload) != 100 {
		t.Errorf("payload size = %d, want 100", len(out.Payload))
	}
}

func TestRoundTripUDPAndICMP(t *testing.T) {
	var b packet.Builder
	ip := packet.IPv4{TTL: 55, SrcIP: [4]byte{9, 9, 9, 9}, DstIP: [4]byte{8, 8, 8, 8}}
	udpIn := b.BuildUDP(t0, ip, packet.UDP{SrcPort: 500, DstPort: 4500}, make([]byte, 64))
	row := make([]int8, BitsPerPacket)
	EncodePacket(row, udpIn)
	out, err := DecodeRow(row, t0, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.UDP == nil || out.UDP.SrcPort != 500 || out.UDP.DstPort != 4500 {
		t.Fatalf("udp round trip: %+v", out.UDP)
	}
	if len(out.Payload) != 64 {
		t.Errorf("udp payload = %d", len(out.Payload))
	}

	var ic packet.ICMPv4
	ic.Type = packet.ICMPEchoReply
	ic.SetEcho(21, 42)
	icmpIn := b.BuildICMP(t0, ip, ic, nil)
	EncodePacket(row, icmpIn)
	out, err = DecodeRow(row, t0, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ICMP == nil || out.ICMP.Type != packet.ICMPEchoReply || out.ICMP.ID() != 21 || out.ICMP.Seq() != 42 {
		t.Fatalf("icmp round trip: %+v", out.ICMP)
	}
}

func TestQuickRoundTripHeaders(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, window uint16, ttl uint8, flags uint16) bool {
		var b packet.Builder
		ip := packet.IPv4{TTL: ttl, SrcIP: [4]byte{10, 1, 2, 3}, DstIP: [4]byte{10, 4, 5, 6}}
		in := b.BuildTCP(t0, ip, packet.TCP{
			SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack,
			Window: window, Flags: packet.TCPFlags(flags) & 0x1ff,
		}, nil)
		row := make([]int8, BitsPerPacket)
		EncodePacket(row, in)
		out, err := DecodeRow(row, t0, DecodeOptions{})
		if err != nil {
			return false
		}
		return out.TCP.SrcPort == srcPort && out.TCP.DstPort == dstPort &&
			out.TCP.Seq == seq && out.TCP.Ack == ack &&
			out.TCP.Window == window && out.IPv4.TTL == ttl &&
			out.TCP.Flags == packet.TCPFlags(flags)&0x1ff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFromFlowTruncation(t *testing.T) {
	f := &flow.Flow{}
	for i := 0; i < 10; i++ {
		f.Append(buildTCP(t, nil, 0))
	}
	m := FromFlow(f, 4)
	if m.NumRows != 4 {
		t.Fatalf("rows = %d, want 4", m.NumRows)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixValidate(t *testing.T) {
	m := NewMatrix(2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.Data[5] = 7
	if err := m.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-alphabet cell")
	}
	bad := &Matrix{NumRows: 2, Data: make([]int8, 10)}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestDecodeRowNoIP(t *testing.T) {
	m := NewMatrix(1)
	_, err := DecodeRow(m.Row(0), t0, DecodeOptions{})
	if err == nil {
		t.Fatal("expected error for all-vacant row")
	}
}

func TestRepairProtocolMismatch(t *testing.T) {
	// Build a TCP packet, then corrupt the IP protocol byte bits to UDP.
	p := buildTCP(t, nil, 0)
	row := make([]int8, BitsPerPacket)
	EncodePacket(row, p)
	// Protocol byte is IP header byte 9 => bits [72, 80). 17 = 00010001.
	for j := 0; j < 8; j++ {
		row[IPv4Offset+72+j] = Zero
	}
	row[IPv4Offset+72+3] = One
	row[IPv4Offset+72+7] = One

	// Strict decoding must reject the inconsistency.
	if _, err := DecodeRow(row, t0, DecodeOptions{}); err == nil {
		t.Fatal("strict decode accepted protocol mismatch")
	}
	// Repair reconciles with the populated TCP section.
	out, err := DecodeRow(row, t0, DecodeOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.TCP == nil {
		t.Fatal("repair did not restore TCP")
	}
}

func TestRepairInvalidIHL(t *testing.T) {
	p := buildTCP(t, nil, 0)
	row := make([]int8, BitsPerPacket)
	EncodePacket(row, p)
	// IHL bits are [4,8) of the first byte; set them to 2 (0010).
	row[IPv4Offset+4] = Zero
	row[IPv4Offset+5] = Zero
	row[IPv4Offset+6] = One
	row[IPv4Offset+7] = Zero
	if _, err := DecodeRow(row, t0, DecodeOptions{}); err == nil {
		t.Fatal("strict decode accepted IHL=2")
	}
	out, err := DecodeRow(row, t0, DecodeOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.IPv4.IHL != 5 {
		t.Errorf("repaired IHL = %d, want 5", out.IPv4.IHL)
	}
}

func TestToPacketsSkipsBadRowsInRepairMode(t *testing.T) {
	f := &flow.Flow{}
	f.Append(buildTCP(t, nil, 0))
	f.Append(buildTCP(t, nil, 0))
	m := FromFlow(f, 0)
	// Vacate row 1 entirely: undecodable.
	row := m.Row(1)
	for i := range row {
		row[i] = Vacant
	}
	pkts, skipped, err := ToPackets(m, DecodeOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || skipped != 1 {
		t.Fatalf("pkts=%d skipped=%d", len(pkts), skipped)
	}
	_, _, err = ToPackets(m, DecodeOptions{})
	if err == nil {
		t.Fatal("strict ToPackets should fail")
	}
}

func TestToPacketsTimestampsMonotone(t *testing.T) {
	f := &flow.Flow{}
	for i := 0; i < 5; i++ {
		f.Append(buildTCP(t, nil, 0))
	}
	m := FromFlow(f, 0)
	pkts, _, err := ToPackets(m, DecodeOptions{Repair: true, Start: t0, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pkts); i++ {
		if !pkts[i].Timestamp.After(pkts[i-1].Timestamp) {
			t.Fatal("timestamps not strictly increasing")
		}
	}
	if got := pkts[1].Timestamp.Sub(pkts[0].Timestamp); got != 2*time.Millisecond {
		t.Errorf("interval = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(1)
	c := m.Clone()
	c.Data[0] = One
	if m.Data[0] == One {
		t.Fatal("clone shares storage")
	}
}

func TestSectionHelpers(t *testing.T) {
	row := make([]int8, BitsPerPacket)
	for i := range row {
		row[i] = Vacant
	}
	if !SectionVacant(row, 0, 10) {
		t.Error("vacant span misreported")
	}
	row[3] = Zero
	if SectionVacant(row, 0, 10) {
		t.Error("non-vacant span misreported")
	}
	if SectionActive(row, 0, 10) {
		t.Error("zeros are not active")
	}
	row[4] = One
	if !SectionActive(row, 0, 10) {
		t.Error("active span misreported")
	}
}

func TestBitsPerPacketConstant(t *testing.T) {
	if BitsPerPacket != 1088 {
		t.Fatalf("BitsPerPacket = %d, want 1088 (paper Figure 2)", BitsPerPacket)
	}
	if IPv4Bits != 480 || TCPBits != 480 || UDPBits != 64 || ICMPBits != 64 {
		t.Fatal("section widths diverge from paper Figure 2")
	}
}
