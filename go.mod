module trafficdiff

go 1.22
